//! K-nearest-neighbors with a reference-set cap: brute-force distance over
//! a deterministic subsample keeps prediction cost bounded on large traces
//! (the paper's Fig 18 notes KNN's 2.8-hour exploration cost).
//!
//! The prediction path is a blocked distance kernel: reference squared
//! norms are precomputed at fit (via `heimdall-nn`'s unrolled [`dot_f32`])
//! so each query/reference pair costs one dot product through
//! `‖a−b‖² = ‖a‖² + ‖b‖² − 2a·b`. Batches transpose eight queries into a
//! `[dim][8]` tile so the kernel's inner loop is one eight-lane
//! multiply-add per reference element — every reference row is read once
//! per block instead of once per query. Top-k selection is a k-bounded
//! insertion scan over the precomputed distances. The scalar path shares
//! the same sequential-order dot product and vote, so `predict_batch` is
//! bitwise-identical to per-row `predict`; the seed path is kept as
//! [`KNearestNeighbors::predict_reference`] for the bench comparison.

use crate::Classifier;
use heimdall_nn::{dot_f32, Dataset};
use heimdall_trace::rng::Rng64;
use serde::{Deserialize, Serialize};

/// Queries per block in the batched kernel: each reference row loaded from
/// memory serves this many dot products.
const QUERY_BLOCK: usize = 8;

/// KNN classifier with distance-weighted voting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    /// Number of neighbors.
    pub k: usize,
    /// Maximum retained reference rows (deterministic subsample).
    pub max_refs: usize,
    refs: Dataset,
    /// Squared L2 norm per reference row, precomputed at fit.
    norms: Vec<f32>,
}

impl Default for KNearestNeighbors {
    fn default() -> Self {
        KNearestNeighbors {
            k: 5,
            max_refs: 2048,
            refs: Dataset::new(1),
            norms: Vec::new(),
        }
    }
}

/// Sequential-order dot product. Both prediction paths accumulate each
/// query's dot in strictly increasing element order — the eight-lane batch
/// kernel keeps one independent accumulator per query — so this is the
/// scalar twin that makes `predict` bitwise-equal to `predict_batch`.
fn dot_seq(a: &[f32], b: &[f32]) -> f32 {
    let mut s = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        s += x * y;
    }
    s
}

impl KNearestNeighbors {
    /// Fills `out` with the squared distance to every reference row, via
    /// the precomputed-norm identity. Distances are clamped at zero: the
    /// expanded form can round slightly negative for coincident points.
    fn fill_distances(&self, x: &[f32], query_norm: f32, out: &mut Vec<f32>) {
        out.clear();
        if self.refs.dim == 0 {
            out.extend(self.norms.iter().map(|&n| (query_norm + n).max(0.0)));
            return;
        }
        out.extend(
            self.refs
                .x
                .chunks_exact(self.refs.dim)
                .zip(&self.norms)
                .map(|(r, &n)| (query_norm + n - 2.0 * dot_seq(x, r)).max(0.0)),
        );
    }

    /// Distance-weighted vote over the k nearest entries of a distance
    /// column. A k-bounded insertion scan (the seed's top-k structure, fed
    /// precomputed distances) keeps the common case at one comparison per
    /// reference; the retained k are then ordered by `(distance, index)`
    /// so the vote accumulates deterministically. `top` is caller scratch.
    fn vote(&self, dists: &[f32], top: &mut Vec<(f32, u32)>) -> f32 {
        let k = self.k.min(dists.len());
        top.clear();
        for (i, &d) in dists.iter().take(k).enumerate() {
            top.push((d, i as u32));
        }
        // Largest distance first; ties broken by index so the scan is
        // fully deterministic.
        top.sort_unstable_by(|a, b| b.0.total_cmp(&a.0).then(b.1.cmp(&a.1)));
        // `bound` keeps the current k-th distance in a register. Blocks
        // whose (vectorized, eight-lane) minimum cannot beat the bound are
        // skipped wholesale; a block that can is rescanned element-wise
        // with exactly the sequential insert logic, so the result is
        // identical to a plain left-to-right scan.
        let mut bound = top[0].0;
        let mut base = k;
        for block in dists[k..].chunks(64) {
            let mut lanes = [f32::INFINITY; 8];
            let mut chunks = block.chunks_exact(8);
            for ch in chunks.by_ref() {
                for q in 0..8 {
                    if ch[q] < lanes[q] {
                        lanes[q] = ch[q];
                    }
                }
            }
            let mut m = f32::INFINITY;
            for &v in lanes.iter().chain(chunks.remainder()) {
                if v < m {
                    m = v;
                }
            }
            if m < bound {
                for (j, &d) in block.iter().enumerate() {
                    if d < bound {
                        top[0] = (d, (base + j) as u32);
                        let mut t = 0;
                        while t + 1 < top.len() && top[t].0 < top[t + 1].0 {
                            top.swap(t, t + 1);
                            t += 1;
                        }
                        bound = top[0].0;
                    }
                }
            }
            base += block.len();
        }
        top.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(d, i) in top.iter() {
            let w = 1.0 / (d as f64 + 1e-6);
            num += w * self.refs.y[i as usize] as f64;
            den += w;
        }
        (num / den) as f32
    }

    /// The seed prediction path: per-reference squared-difference loop and
    /// a hand-rolled bubble-insert top-k. Kept as the baseline the
    /// `models` bench lane measures the batched kernel against.
    pub fn predict_reference(&self, x: &[f32]) -> f32 {
        assert!(!self.refs.is_empty(), "predict before fit");
        let k = self.k.min(self.refs.rows());
        // Max-heap of (distance, label) keeping the k smallest distances.
        let mut heap: Vec<(f32, f32)> = Vec::with_capacity(k + 1);
        for i in 0..self.refs.rows() {
            let d: f32 = self
                .refs
                .row(i)
                .iter()
                .zip(x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if heap.len() < k {
                heap.push((d, self.refs.y[i]));
                if heap.len() == k {
                    heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                }
            } else if d < heap[0].0 {
                heap[0] = (d, self.refs.y[i]);
                // Re-establish "largest first".
                let mut j = 0;
                while j + 1 < heap.len() && heap[j].0 < heap[j + 1].0 {
                    heap.swap(j, j + 1);
                    j += 1;
                }
            }
        }
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(d, y) in &heap {
            let w = 1.0 / (d as f64 + 1e-6);
            num += w * y as f64;
            den += w;
        }
        (num / den) as f32
    }
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty dataset");
        assert!(self.k > 0, "k must be positive");
        if data.rows() <= self.max_refs {
            self.refs = data.clone();
        } else {
            let mut idx: Vec<usize> = (0..data.rows()).collect();
            let mut rng = Rng64::new(0x6b6e6e);
            rng.shuffle(&mut idx);
            idx.truncate(self.max_refs);
            let mut refs = Dataset::new(data.dim);
            for i in idx {
                refs.push(data.row(i), data.y[i]);
            }
            self.refs = refs;
        }
        self.norms = (0..self.refs.rows())
            .map(|i| {
                let r = self.refs.row(i);
                dot_f32(r, r)
            })
            .collect();
    }

    fn predict(&self, x: &[f32]) -> f32 {
        assert!(!self.refs.is_empty(), "predict before fit");
        let mut dists = Vec::with_capacity(self.refs.rows());
        self.fill_distances(x, dot_f32(x, x), &mut dists);
        let mut top = Vec::with_capacity(self.k.min(dists.len()));
        self.vote(&dists, &mut top)
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        assert!(!self.refs.is_empty(), "predict before fit");
        let dim = self.refs.dim;
        if dim == 0 || data.dim == 0 {
            return (0..data.rows())
                .map(|i| self.predict(data.row(i)))
                .collect();
        }
        let rows = data.rows();
        let n_refs = self.refs.rows();
        let mut out = Vec::with_capacity(rows);
        // Query tile transposed to `[dim][QUERY_BLOCK]` (tail zero-padded)
        // so the kernel's inner loop is one QUERY_BLOCK-lane multiply-add
        // per reference element.
        let mut qt = vec![0.0f32; dim * QUERY_BLOCK];
        let mut query_norms = [0.0f32; QUERY_BLOCK];
        let mut dist = vec![0.0f32; n_refs * QUERY_BLOCK];
        let mut top: Vec<(f32, u32)> = Vec::with_capacity(self.k.min(n_refs));
        let mut r = 0;
        while r < rows {
            let b = QUERY_BLOCK.min(rows - r);
            if b < QUERY_BLOCK {
                qt.iter_mut().for_each(|v| *v = 0.0);
            }
            for q in 0..b {
                let x = data.row(r + q);
                query_norms[q] = dot_f32(x, x);
                for (d, &xv) in x.iter().enumerate() {
                    qt[d * QUERY_BLOCK + q] = xv;
                }
            }
            for (j, (ref_row, &ref_norm)) in
                self.refs.x.chunks_exact(dim).zip(&self.norms).enumerate()
            {
                // One accumulator per query lane: each accumulates its dot
                // in element order, matching `dot_seq` bit-for-bit. The
                // `chunks_exact` zip gives the compiler known-length rows,
                // so the lane loop compiles to one broadcast multiply-add.
                let mut acc = [0.0f32; QUERY_BLOCK];
                for (&rv, qrow) in ref_row.iter().zip(qt.chunks_exact(QUERY_BLOCK)) {
                    for (a, &qv) in acc.iter_mut().zip(qrow) {
                        *a += rv * qv;
                    }
                }
                for q in 0..b {
                    dist[q * n_refs + j] = (query_norms[q] + ref_norm - 2.0 * acc[q]).max(0.0);
                }
            }
            for q in 0..b {
                out.push(self.vote(&dist[q * n_refs..(q + 1) * n_refs], &mut top));
            }
            r += b;
        }
        out
    }

    fn descriptor(&self) -> Vec<f64> {
        crate::normalize_descriptor(vec![self.k as f64, self.max_refs as f64], 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_auc;

    fn clusters(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            if rng.chance(0.5) {
                d.push(
                    &[rng.normal(1.0, 0.3) as f32, rng.normal(1.0, 0.3) as f32],
                    1.0,
                );
            } else {
                d.push(
                    &[rng.normal(-1.0, 0.3) as f32, rng.normal(-1.0, 0.3) as f32],
                    0.0,
                );
            }
        }
        d
    }

    #[test]
    fn knn_separates_clusters() {
        let train = clusters(2000, 1);
        let test = clusters(300, 2);
        let mut m = KNearestNeighbors::default();
        m.fit(&train);
        let auc = evaluate_auc(&m, &test);
        assert!(auc > 0.98, "auc {auc}");
    }

    #[test]
    fn subsampling_caps_reference_set() {
        let train = clusters(10_000, 3);
        let mut m = KNearestNeighbors {
            max_refs: 500,
            ..Default::default()
        };
        m.fit(&train);
        assert_eq!(m.refs.rows(), 500);
        let auc = evaluate_auc(&m, &clusters(300, 4));
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn exact_neighbor_dominates() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[10.0], 1.0);
        d.push(&[11.0], 1.0);
        let mut m = KNearestNeighbors {
            k: 1,
            ..Default::default()
        };
        m.fit(&d);
        assert!(m.predict(&[0.1]) < 0.5);
        assert!(m.predict(&[10.2]) > 0.5);
    }

    #[test]
    fn k_larger_than_refs_is_clamped() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 1.0);
        let mut m = KNearestNeighbors {
            k: 50,
            ..Default::default()
        };
        m.fit(&d);
        assert!(m.predict(&[0.5]).is_finite());
    }

    #[test]
    fn batch_is_bitwise_equal_to_scalar_including_ragged_tail() {
        // 37 queries: four full blocks of 8 plus a tail of 5.
        let train = clusters(1200, 7);
        let test = clusters(37, 8);
        let mut m = KNearestNeighbors::default();
        m.fit(&train);
        let batch = m.predict_batch(&test);
        for (i, &b) in batch.iter().enumerate() {
            assert_eq!(b.to_bits(), m.predict(test.row(i)).to_bits());
        }
    }

    #[test]
    fn kernel_agrees_with_reference_path() {
        // The expanded-norm kernel reassociates the distance arithmetic,
        // so agreement with the seed path is approximate, not bitwise.
        let train = clusters(1500, 9);
        let test = clusters(200, 10);
        let mut m = KNearestNeighbors::default();
        m.fit(&train);
        for i in 0..test.rows() {
            let a = m.predict(test.row(i));
            let b = m.predict_reference(test.row(i));
            assert!((a - b).abs() < 1e-3, "row {i}: kernel {a} reference {b}");
        }
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_unfitted_panics() {
        KNearestNeighbors::default().predict(&[0.0]);
    }
}
