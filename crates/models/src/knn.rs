//! K-nearest-neighbors with a reference-set cap: brute-force distance over
//! a deterministic subsample keeps prediction cost bounded on large traces
//! (the paper's Fig 18 notes KNN's 2.8-hour exploration cost).

use crate::Classifier;
use heimdall_nn::Dataset;
use heimdall_trace::rng::Rng64;
use serde::{Deserialize, Serialize};

/// KNN classifier with distance-weighted voting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KNearestNeighbors {
    /// Number of neighbors.
    pub k: usize,
    /// Maximum retained reference rows (deterministic subsample).
    pub max_refs: usize,
    refs: Dataset,
}

impl Default for KNearestNeighbors {
    fn default() -> Self {
        KNearestNeighbors {
            k: 5,
            max_refs: 2048,
            refs: Dataset::new(1),
        }
    }
}

impl Classifier for KNearestNeighbors {
    fn name(&self) -> &'static str {
        "KNN"
    }

    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty dataset");
        assert!(self.k > 0, "k must be positive");
        if data.rows() <= self.max_refs {
            self.refs = data.clone();
            return;
        }
        let mut idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(0x6b6e6e);
        rng.shuffle(&mut idx);
        idx.truncate(self.max_refs);
        let mut refs = Dataset::new(data.dim);
        for i in idx {
            refs.push(data.row(i), data.y[i]);
        }
        self.refs = refs;
    }

    fn predict(&self, x: &[f32]) -> f32 {
        assert!(!self.refs.is_empty(), "predict before fit");
        let k = self.k.min(self.refs.rows());
        // Max-heap of (distance, label) keeping the k smallest distances.
        let mut heap: Vec<(f32, f32)> = Vec::with_capacity(k + 1);
        for i in 0..self.refs.rows() {
            let d: f32 = self
                .refs
                .row(i)
                .iter()
                .zip(x)
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if heap.len() < k {
                heap.push((d, self.refs.y[i]));
                if heap.len() == k {
                    heap.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
                }
            } else if d < heap[0].0 {
                heap[0] = (d, self.refs.y[i]);
                // Re-establish "largest first".
                let mut j = 0;
                while j + 1 < heap.len() && heap[j].0 < heap[j + 1].0 {
                    heap.swap(j, j + 1);
                    j += 1;
                }
            }
        }
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for &(d, y) in &heap {
            let w = 1.0 / (d as f64 + 1e-6);
            num += w * y as f64;
            den += w;
        }
        (num / den) as f32
    }

    fn descriptor(&self) -> Vec<f64> {
        crate::normalize_descriptor(vec![self.k as f64, self.max_refs as f64], 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_auc;

    fn clusters(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            if rng.chance(0.5) {
                d.push(
                    &[rng.normal(1.0, 0.3) as f32, rng.normal(1.0, 0.3) as f32],
                    1.0,
                );
            } else {
                d.push(
                    &[rng.normal(-1.0, 0.3) as f32, rng.normal(-1.0, 0.3) as f32],
                    0.0,
                );
            }
        }
        d
    }

    #[test]
    fn knn_separates_clusters() {
        let train = clusters(2000, 1);
        let test = clusters(300, 2);
        let mut m = KNearestNeighbors::default();
        m.fit(&train);
        let auc = evaluate_auc(&m, &test);
        assert!(auc > 0.98, "auc {auc}");
    }

    #[test]
    fn subsampling_caps_reference_set() {
        let train = clusters(10_000, 3);
        let mut m = KNearestNeighbors {
            max_refs: 500,
            ..Default::default()
        };
        m.fit(&train);
        assert_eq!(m.refs.rows(), 500);
        let auc = evaluate_auc(&m, &clusters(300, 4));
        assert!(auc > 0.95, "auc {auc}");
    }

    #[test]
    fn exact_neighbor_dominates() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[10.0], 1.0);
        d.push(&[11.0], 1.0);
        let mut m = KNearestNeighbors {
            k: 1,
            ..Default::default()
        };
        m.fit(&d);
        assert!(m.predict(&[0.1]) < 0.5);
        assert!(m.predict(&[10.2]) > 0.5);
    }

    #[test]
    fn k_larger_than_refs_is_clamped() {
        let mut d = Dataset::new(1);
        d.push(&[0.0], 0.0);
        d.push(&[1.0], 1.0);
        let mut m = KNearestNeighbors {
            k: 50,
            ..Default::default()
        };
        m.fit(&d);
        assert!(m.predict(&[0.5]).is_finite());
    }

    #[test]
    #[should_panic(expected = "predict before fit")]
    fn predict_unfitted_panics() {
        KNearestNeighbors::default().predict(&[0.0]);
    }
}
