//! Classical machine-learning baselines and AutoML search.
//!
//! The paper's model-exploration stage (§3.4, Fig 8) compares the neural
//! network against RNN, SVC, KNN, logistic regression, AdaBoost, gradient
//! boosting, and random forests; the AutoML study (§8.2, Fig 18) covers 16
//! scikit-learn classifier families. This crate implements those families
//! from scratch behind one [`Classifier`] trait so the benches can sweep
//! them uniformly.
//!
//! # Examples
//!
//! ```
//! use heimdall_models::{Classifier, LogisticRegression};
//! use heimdall_nn::Dataset;
//!
//! let mut data = Dataset::new(1);
//! for i in 0..100 {
//!     data.push(&[i as f32 / 100.0], if i >= 50 { 1.0 } else { 0.0 });
//! }
//! let mut model = LogisticRegression::default();
//! model.fit(&data);
//! assert!(model.predict(&[0.95]) > model.predict(&[0.05]));
//! ```

pub mod automl;
pub mod bayes;
pub mod ensemble;
pub mod knn;
pub mod linear;
pub mod svm;
pub mod tree;
pub mod zoo;

use heimdall_nn::Dataset;

pub use automl::{candidate_seed, AutoMl, AutoMlConfig, AutoMlResult, CandidateReport, Family};
pub use bayes::{BernoulliNb, GaussianNb, MultinomialNb};
pub use ensemble::{AdaBoost, ExtraTrees, GradientBoosting, RandomForest};
pub use knn::KNearestNeighbors;
pub use linear::{
    LinearDiscriminant, LinearSvm, LogisticRegression, PassiveAggressive, Perceptron,
    QuadraticDiscriminant, SgdClassifier,
};
pub use svm::RbfSvc;
pub use tree::{SplitMode, Tree, TreeParams, TreeTask};
pub use zoo::{DecisionTreeClassifier, MlpWrapper, RnnWrapper};

/// A binary classifier predicting `P(slow)` for a feature row.
///
/// All models use label `1.0` = slow (decline/reroute), `0.0` = fast.
///
/// `Send` is required so the AutoML search can fan candidates out across
/// worker threads; every model here is plain owned data.
pub trait Classifier: Send {
    /// Human-readable family name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Fits the model to a dataset.
    ///
    /// # Panics
    ///
    /// Implementations panic when the dataset is empty.
    fn fit(&mut self, data: &Dataset);

    /// Probability of the slow class for one row.
    fn predict(&self, x: &[f32]) -> f32;

    /// Predictions for every row, bitwise-identical to calling
    /// [`Classifier::predict`] per row. The default is the scalar loop;
    /// families with a batch-friendly structure (trees, KNN, linear
    /// scorers) override it with one-matrix-pass kernels.
    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        (0..data.rows())
            .map(|i| self.predict(data.row(i)))
            .collect()
    }

    /// Predictions for every row (routed through the batched kernel).
    fn predict_all(&self, data: &Dataset) -> Vec<f32> {
        self.predict_batch(data)
    }

    /// Fixed-length architecture descriptor for the cross-dataset model
    /// similarity analysis (Fig 18c). Same-family models with the same
    /// hyperparameters must return identical descriptors.
    fn descriptor(&self) -> Vec<f64>;
}

/// Applies `score` to every row of `data` in one pass over its contiguous
/// row storage — the shared shape of the linear/NB/discriminant batch
/// kernels. The dim-0 degenerate case scores an empty slice per row.
pub(crate) fn batch_rows(data: &Dataset, mut score: impl FnMut(&[f32]) -> f32) -> Vec<f32> {
    if data.dim == 0 {
        return (0..data.rows()).map(|_| score(&[])).collect();
    }
    data.x.chunks_exact(data.dim).map(&mut score).collect()
}

/// Convenience: ROC-AUC of a fitted classifier on a dataset.
pub fn evaluate_auc(model: &dyn Classifier, data: &Dataset) -> f64 {
    heimdall_metrics::roc_auc(&model.predict_all(data), &data.labels_bool())
}

/// Length of a normalized descriptor: 16 one-hot family slots followed by
/// 16 hyperparameter slots.
pub const DESCRIPTOR_LEN: usize = 32;

/// Pads/truncates a descriptor to the workspace-standard
/// [`DESCRIPTOR_LEN`] slots so cosine similarity is well-defined across
/// families: slots 0-15 one-hot the family (ids follow the
/// [`automl::Family::ALL`] row order; the non-AutoML wrappers Perceptron,
/// LogisticRegression, and RnnWrapper reuse their nearest family's slot),
/// slots 16-31 carry hyperparameters.
///
/// # Panics
///
/// Panics if `family_id >= 16` — every family must own a dedicated slot,
/// the seed's `% 8` wraparound silently aliased families (e.g. 0/8, 7/15)
/// and inflated Fig 18c cross-family similarity.
pub fn normalize_descriptor(mut v: Vec<f64>, family_id: usize) -> Vec<f64> {
    assert!(family_id < 16, "family_id {family_id} out of one-hot range");
    let mut out = vec![0.0; DESCRIPTOR_LEN];
    out[family_id] = 1.0;
    v.truncate(16);
    for (i, x) in v.into_iter().enumerate() {
        out[16 + i] = x;
    }
    out
}
