//! Classical machine-learning baselines and AutoML search.
//!
//! The paper's model-exploration stage (§3.4, Fig 8) compares the neural
//! network against RNN, SVC, KNN, logistic regression, AdaBoost, gradient
//! boosting, and random forests; the AutoML study (§8.2, Fig 18) covers 16
//! scikit-learn classifier families. This crate implements those families
//! from scratch behind one [`Classifier`] trait so the benches can sweep
//! them uniformly.
//!
//! # Examples
//!
//! ```
//! use heimdall_models::{Classifier, LogisticRegression};
//! use heimdall_nn::Dataset;
//!
//! let mut data = Dataset::new(1);
//! for i in 0..100 {
//!     data.push(&[i as f32 / 100.0], if i >= 50 { 1.0 } else { 0.0 });
//! }
//! let mut model = LogisticRegression::default();
//! model.fit(&data);
//! assert!(model.predict(&[0.95]) > model.predict(&[0.05]));
//! ```

pub mod automl;
pub mod bayes;
pub mod ensemble;
pub mod knn;
pub mod linear;
pub mod svm;
pub mod tree;
pub mod zoo;

use heimdall_nn::Dataset;

pub use automl::{AutoMl, AutoMlConfig, AutoMlResult, CandidateReport};
pub use bayes::{BernoulliNb, GaussianNb, MultinomialNb};
pub use ensemble::{AdaBoost, ExtraTrees, GradientBoosting, RandomForest};
pub use knn::KNearestNeighbors;
pub use linear::{
    LinearDiscriminant, LinearSvm, LogisticRegression, PassiveAggressive, Perceptron,
    QuadraticDiscriminant, SgdClassifier,
};
pub use svm::RbfSvc;
pub use tree::{SplitMode, Tree, TreeParams, TreeTask};
pub use zoo::{DecisionTreeClassifier, MlpWrapper, RnnWrapper};

/// A binary classifier predicting `P(slow)` for a feature row.
///
/// All models use label `1.0` = slow (decline/reroute), `0.0` = fast.
pub trait Classifier {
    /// Human-readable family name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Fits the model to a dataset.
    ///
    /// # Panics
    ///
    /// Implementations panic when the dataset is empty.
    fn fit(&mut self, data: &Dataset);

    /// Probability of the slow class for one row.
    fn predict(&self, x: &[f32]) -> f32;

    /// Predictions for every row.
    fn predict_all(&self, data: &Dataset) -> Vec<f32> {
        (0..data.rows())
            .map(|i| self.predict(data.row(i)))
            .collect()
    }

    /// Fixed-length architecture descriptor for the cross-dataset model
    /// similarity analysis (Fig 18c). Same-family models with the same
    /// hyperparameters must return identical descriptors.
    fn descriptor(&self) -> Vec<f64>;
}

/// Convenience: ROC-AUC of a fitted classifier on a dataset.
pub fn evaluate_auc(model: &dyn Classifier, data: &Dataset) -> f64 {
    heimdall_metrics::roc_auc(&model.predict_all(data), &data.labels_bool())
}

/// Pads/truncates a descriptor to the workspace-standard 24 slots so cosine
/// similarity is well-defined across families: slots 0-7 one-hot the family,
/// slots 8-23 carry hyperparameters.
pub fn normalize_descriptor(mut v: Vec<f64>, family_id: usize) -> Vec<f64> {
    let mut out = vec![0.0; 24];
    out[family_id % 8] = 1.0;
    v.truncate(16);
    for (i, x) in v.into_iter().enumerate() {
        out[8 + i] = x;
    }
    out
}
