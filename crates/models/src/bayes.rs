//! Naive-Bayes family: Gaussian, Bernoulli, Multinomial — three of the
//! sixteen AutoML classifier rows of Fig 18.
//!
//! Each model folds its class-conditional parameters into per-feature
//! log-odds tables at fit time, so scoring a row is a single table walk
//! with no `ln` calls, and `predict_batch` streams those walks over the
//! dataset's contiguous row storage.

use crate::Classifier;
use heimdall_nn::activation::sigmoid;
use heimdall_nn::Dataset;
use serde::{Deserialize, Serialize};

/// Gaussian naive Bayes with per-feature class-conditional normals.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GaussianNb {
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
    log_prior: [f64; 2],
    /// `1 / (2 * var[class][i])`, folded at fit so scoring needs no
    /// divisions.
    inv_two_var: [Vec<f64>; 2],
    /// `Σ_i 0.5 * (ln var[0][i] − ln var[1][i])` — the normalization
    /// constants of the two class likelihoods collapse to one scalar (the
    /// `2π` factors cancel in the odds ratio).
    log_norm_const: f64,
}

impl GaussianNb {
    fn score_row(&self, x: &[f32]) -> f32 {
        let mut log_odds = self.log_prior[1] - self.log_prior[0] + self.log_norm_const;
        for (i, &xv) in x.iter().enumerate() {
            let xv = xv as f64;
            let d0 = xv - self.mean[0][i];
            let d1 = xv - self.mean[1][i];
            log_odds += d0 * d0 * self.inv_two_var[0][i] - d1 * d1 * self.inv_two_var[1][i];
        }
        sigmoid(log_odds as f32)
    }
}

impl Classifier for GaussianNb {
    fn name(&self) -> &'static str {
        "GaussianNB"
    }

    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty dataset");
        for class in 0..2 {
            let positive = class == 1;
            let (m, v, n) = super::linear::class_moments_pub(data, positive);
            self.mean[class] = m;
            self.var[class] = v.into_iter().map(|x| x.max(1e-9)).collect();
            self.log_prior[class] = ((n + 1.0) / (data.rows() as f64 + 2.0)).ln();
            self.inv_two_var[class] = self.var[class].iter().map(|&v| 1.0 / (2.0 * v)).collect();
        }
        self.log_norm_const = self.var[0]
            .iter()
            .zip(&self.var[1])
            .map(|(&v0, &v1)| 0.5 * (v0.ln() - v1.ln()))
            .sum();
    }

    fn predict(&self, x: &[f32]) -> f32 {
        self.score_row(x)
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        crate::batch_rows(data, |x| self.score_row(x))
    }

    fn descriptor(&self) -> Vec<f64> {
        crate::normalize_descriptor(vec![1.0], 6)
    }
}

/// Bernoulli naive Bayes; features are binarized at their training mean.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BernoulliNb {
    thresholds: Vec<f64>,
    /// `p[class][feature]` = P(feature on | class), Laplace-smoothed.
    p_on: [Vec<f64>; 2],
    log_prior: [f64; 2],
    /// `ln p_on[1][k] − ln p_on[0][k]`: log-odds contribution of an
    /// active feature.
    w_on: Vec<f64>,
    /// `ln (1−p_on[1][k]) − ln (1−p_on[0][k])`: contribution of an
    /// inactive feature.
    w_off: Vec<f64>,
}

impl BernoulliNb {
    fn score_row(&self, x: &[f32]) -> f32 {
        let mut log_odds = self.log_prior[1] - self.log_prior[0];
        for (k, &xv) in x.iter().enumerate() {
            log_odds += if xv as f64 > self.thresholds[k] {
                self.w_on[k]
            } else {
                self.w_off[k]
            };
        }
        sigmoid(log_odds as f32)
    }
}

impl Classifier for BernoulliNb {
    fn name(&self) -> &'static str {
        "BernoulliNB"
    }

    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty dataset");
        self.thresholds = (0..data.dim)
            .map(|c| heimdall_metrics::stats::mean(&data.column_f64(c)))
            .collect();
        let mut on = [vec![0.0f64; data.dim], vec![0.0f64; data.dim]];
        let mut count = [0.0f64; 2];
        for i in 0..data.rows() {
            let class = usize::from(data.y[i] >= 0.5);
            count[class] += 1.0;
            for (k, &x) in data.row(i).iter().enumerate() {
                if x as f64 > self.thresholds[k] {
                    on[class][k] += 1.0;
                }
            }
        }
        for class in 0..2 {
            self.p_on[class] = on[class]
                .iter()
                .map(|&c| (c + 1.0) / (count[class] + 2.0))
                .collect();
            self.log_prior[class] = ((count[class] + 1.0) / (data.rows() as f64 + 2.0)).ln();
        }
        self.w_on = self.p_on[1]
            .iter()
            .zip(&self.p_on[0])
            .map(|(&p1, &p0)| p1.ln() - p0.ln())
            .collect();
        self.w_off = self.p_on[1]
            .iter()
            .zip(&self.p_on[0])
            .map(|(&p1, &p0)| (1.0 - p1).ln() - (1.0 - p0).ln())
            .collect();
    }

    fn predict(&self, x: &[f32]) -> f32 {
        self.score_row(x)
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        crate::batch_rows(data, |x| self.score_row(x))
    }

    fn descriptor(&self) -> Vec<f64> {
        crate::normalize_descriptor(vec![2.0], 5)
    }
}

/// Multinomial naive Bayes; negative feature values are clamped to zero
/// (the model expects count-like inputs).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MultinomialNb {
    /// `log_p[class][feature]`.
    log_p: [Vec<f64>; 2],
    log_prior: [f64; 2],
    /// `log_p[1][k] − log_p[0][k]`, folded at fit.
    dlog: Vec<f64>,
}

impl MultinomialNb {
    fn score_row(&self, x: &[f32]) -> f32 {
        let mut log_odds = self.log_prior[1] - self.log_prior[0];
        for (k, &xv) in x.iter().enumerate() {
            log_odds += (xv as f64).max(0.0) * self.dlog[k];
        }
        sigmoid(log_odds as f32)
    }
}

impl Classifier for MultinomialNb {
    fn name(&self) -> &'static str {
        "MultinomialNB"
    }

    fn fit(&mut self, data: &Dataset) {
        assert!(!data.is_empty(), "empty dataset");
        let mut totals = [vec![0.0f64; data.dim], vec![0.0f64; data.dim]];
        let mut count = [0.0f64; 2];
        for i in 0..data.rows() {
            let class = usize::from(data.y[i] >= 0.5);
            count[class] += 1.0;
            for (k, &x) in data.row(i).iter().enumerate() {
                totals[class][k] += (x as f64).max(0.0);
            }
        }
        for class in 0..2 {
            let sum: f64 = totals[class].iter().sum::<f64>() + data.dim as f64;
            self.log_p[class] = totals[class]
                .iter()
                .map(|&t| ((t + 1.0) / sum).ln())
                .collect();
            self.log_prior[class] = ((count[class] + 1.0) / (data.rows() as f64 + 2.0)).ln();
        }
        self.dlog = self.log_p[1]
            .iter()
            .zip(&self.log_p[0])
            .map(|(&a, &b)| a - b)
            .collect();
    }

    fn predict(&self, x: &[f32]) -> f32 {
        self.score_row(x)
    }

    fn predict_batch(&self, data: &Dataset) -> Vec<f32> {
        crate::batch_rows(data, |x| self.score_row(x))
    }

    fn descriptor(&self) -> Vec<f64> {
        crate::normalize_descriptor(vec![3.0], 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_auc;
    use heimdall_trace::rng::Rng64;

    fn shifted_gaussians(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            if rng.chance(0.3) {
                d.push(
                    &[rng.normal(2.0, 1.0) as f32, rng.normal(1.0, 1.0) as f32],
                    1.0,
                );
            } else {
                d.push(
                    &[rng.normal(0.0, 1.0) as f32, rng.normal(0.0, 1.0) as f32],
                    0.0,
                );
            }
        }
        d
    }

    #[test]
    fn gaussian_nb_learns() {
        let train = shifted_gaussians(3000, 1);
        let test = shifted_gaussians(800, 2);
        let mut m = GaussianNb::default();
        m.fit(&train);
        let auc = evaluate_auc(&m, &test);
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn bernoulli_nb_learns() {
        let train = shifted_gaussians(3000, 3);
        let test = shifted_gaussians(800, 4);
        let mut m = BernoulliNb::default();
        m.fit(&train);
        let auc = evaluate_auc(&m, &test);
        assert!(auc > 0.8, "auc {auc}");
    }

    #[test]
    fn multinomial_nb_learns_on_counts() {
        // Count-like features: class 1 has heavier "counts" in feature 0.
        let mut rng = Rng64::new(5);
        let mut d = Dataset::new(2);
        for _ in 0..3000 {
            if rng.chance(0.4) {
                d.push(&[rng.range(5, 15) as f32, rng.range(0, 5) as f32], 1.0);
            } else {
                d.push(&[rng.range(0, 5) as f32, rng.range(5, 15) as f32], 0.0);
            }
        }
        let mut m = MultinomialNb::default();
        m.fit(&d);
        let auc = evaluate_auc(&m, &d);
        assert!(auc > 0.9, "auc {auc}");
    }

    #[test]
    fn multinomial_handles_negative_inputs() {
        let mut d = Dataset::new(1);
        d.push(&[-5.0], 0.0);
        d.push(&[3.0], 1.0);
        let mut m = MultinomialNb::default();
        m.fit(&d);
        assert!(m.predict(&[-2.0]).is_finite());
    }

    #[test]
    fn batch_matches_scalar_bitwise_for_all_three() {
        let train = shifted_gaussians(800, 7);
        let test = shifted_gaussians(64, 8);
        let models: Vec<Box<dyn Classifier>> = vec![
            Box::new(GaussianNb::default()),
            Box::new(BernoulliNb::default()),
            Box::new(MultinomialNb::default()),
        ];
        for mut m in models {
            m.fit(&train);
            let batch = m.predict_batch(&test);
            for (i, &b) in batch.iter().enumerate() {
                assert_eq!(
                    b.to_bits(),
                    m.predict(test.row(i)).to_bits(),
                    "{} row {i}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn predictions_are_probabilities() {
        let train = shifted_gaussians(500, 6);
        let mut m = GaussianNb::default();
        m.fit(&train);
        for i in 0..train.rows() {
            let p = m.predict(train.row(i));
            assert!((0.0..=1.0).contains(&p));
        }
    }
}
