//! CART decision trees: gini classification trees (standalone, forests,
//! extra-trees) and variance-reduction regression trees (gradient boosting).

use heimdall_nn::Dataset;
use heimdall_trace::rng::Rng64;
use serde::{Deserialize, Serialize};

/// How split thresholds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitMode {
    /// Scan candidate thresholds for the best gini/variance reduction.
    Exact,
    /// Pick one random threshold per candidate feature (extra-trees style).
    RandomThreshold,
}

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of features considered per split (`0` = all).
    pub max_features: usize,
    /// Threshold selection mode.
    pub split_mode: SplitMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 8,
            max_features: 0,
            split_mode: SplitMode::Exact,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Mean label (classification: positive fraction).
        value: f32,
    },
    Split {
        feature: usize,
        threshold: f32,
        left: usize,
        right: usize,
    },
}

/// A fitted binary tree predicting a real value in `[0, 1]` (classification)
/// or an unbounded residual (regression).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
    dim: usize,
}

/// Objective used when growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Gini impurity on binary labels.
    Classification,
    /// Variance reduction on real targets.
    Regression,
}

impl Tree {
    /// Fits a tree on `data` rows selected by `idx` with targets `targets`
    /// (classification passes the labels, boosting passes residuals).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty.
    pub fn fit(
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
    ) -> Tree {
        assert!(!idx.is_empty(), "cannot fit a tree on no rows");
        let mut tree = Tree {
            nodes: Vec::new(),
            dim: data.dim,
        };
        let mut scratch = idx.to_vec();
        tree.grow(data, targets, &mut scratch, 0, params, task, rng);
        tree
    }

    fn mean(targets: &[f32], idx: &[usize]) -> f32 {
        idx.iter().map(|&i| targets[i]).sum::<f32>() / idx.len() as f32
    }

    /// Impurity * count (so parent - children compares absolute gain).
    fn impurity_sum(targets: &[f32], idx: &[usize], task: TreeTask) -> f64 {
        let n = idx.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        match task {
            TreeTask::Classification => {
                let p = Self::mean(targets, idx) as f64;
                n * 2.0 * p * (1.0 - p)
            }
            TreeTask::Regression => {
                let m = Self::mean(targets, idx) as f64;
                idx.iter().map(|&i| (targets[i] as f64 - m).powi(2)).sum()
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn grow(
        &mut self,
        data: &Dataset,
        targets: &[f32],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
    ) -> usize {
        let node_id = self.nodes.len();
        let value = Self::mean(targets, idx);
        self.nodes.push(Node::Leaf { value });
        if depth >= params.max_depth
            || idx.len() < params.min_samples_split
            || idx.iter().all(|&i| targets[i] == targets[idx[0]])
        {
            return node_id;
        }

        // Candidate features.
        let n_feats = if params.max_features == 0 {
            data.dim
        } else {
            params.max_features.min(data.dim)
        };
        let mut feats: Vec<usize> = (0..data.dim).collect();
        if n_feats < data.dim {
            rng.shuffle(&mut feats);
            feats.truncate(n_feats);
        }

        let parent_impurity = Self::impurity_sum(targets, idx, task);
        let mut best: Option<(f64, usize, f32)> = None; // (gain, feature, threshold)
        for &f in &feats {
            match params.split_mode {
                SplitMode::RandomThreshold => {
                    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
                    for &i in idx.iter() {
                        let v = data.row(i)[f];
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if hi <= lo {
                        continue;
                    }
                    let thr = lo + rng.f32() * (hi - lo);
                    if let Some(gain) =
                        self.split_gain(data, targets, idx, f, thr, parent_impurity, task)
                    {
                        if best.is_none_or(|(g, _, _)| gain > g) {
                            best = Some((gain, f, thr));
                        }
                    }
                }
                SplitMode::Exact => {
                    // Evaluate up to 16 quantile thresholds of the feature.
                    let mut vals: Vec<f32> = idx.iter().map(|&i| data.row(i)[f]).collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    vals.dedup();
                    if vals.len() < 2 {
                        continue;
                    }
                    let steps = 16.min(vals.len() - 1);
                    for s in 1..=steps {
                        let pos = s * (vals.len() - 1) / (steps + 1).max(1);
                        let thr = (vals[pos] + vals[(pos + 1).min(vals.len() - 1)]) / 2.0;
                        if let Some(gain) =
                            self.split_gain(data, targets, idx, f, thr, parent_impurity, task)
                        {
                            if best.is_none_or(|(g, _, _)| gain > g) {
                                best = Some((gain, f, thr));
                            }
                        }
                    }
                }
            }
        }

        let Some((gain, feature, threshold)) = best else {
            return node_id;
        };
        if gain <= 1e-9 {
            return node_id;
        }

        // Partition in place.
        let mid = partition(data, idx, feature, threshold);
        if mid == 0 || mid == idx.len() {
            return node_id;
        }
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left = self.grow(data, targets, left_idx, depth + 1, params, task, rng);
        let right = self.grow(data, targets, right_idx, depth + 1, params, task, rng);
        self.nodes[node_id] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        node_id
    }

    #[allow(clippy::too_many_arguments)]
    fn split_gain(
        &self,
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        feature: usize,
        threshold: f32,
        parent: f64,
        task: TreeTask,
    ) -> Option<f64> {
        // Single pass accumulating (count, sum, sum-of-squares) per side;
        // both gini and variance derive from those moments.
        let (mut nl, mut sl, mut ssl) = (0.0f64, 0.0f64, 0.0f64);
        let (mut nr, mut sr, mut ssr) = (0.0f64, 0.0f64, 0.0f64);
        for &i in idx {
            let t = targets[i] as f64;
            if data.row(i)[feature] <= threshold {
                nl += 1.0;
                sl += t;
                ssl += t * t;
            } else {
                nr += 1.0;
                sr += t;
                ssr += t * t;
            }
        }
        if nl == 0.0 || nr == 0.0 {
            return None;
        }
        let child = match task {
            TreeTask::Classification => {
                let pl = sl / nl;
                let pr = sr / nr;
                nl * 2.0 * pl * (1.0 - pl) + nr * 2.0 * pr * (1.0 - pr)
            }
            TreeTask::Regression => (ssl - sl * sl / nl) + (ssr - sr * sr / nr),
        };
        Some(parent - child)
    }

    /// Predicted value for one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim`.
    pub fn predict(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.dim, "input dimensionality mismatch");
        let mut node = 0usize;
        loop {
            match self.nodes[node] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[feature] <= threshold { left } else { right };
                }
            }
        }
    }

    /// Number of nodes (descriptor/complexity measure).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum depth reached.
    pub fn depth(&self) -> usize {
        fn d(nodes: &[Node], id: usize) -> usize {
            match nodes[id] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + d(nodes, left).max(d(nodes, right)),
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            d(&self.nodes, 0)
        }
    }
}

/// Stable partition of `idx` by `x[feature] <= threshold`; returns the split
/// point.
fn partition(data: &Dataset, idx: &mut [usize], feature: usize, threshold: f32) -> usize {
    let mut left: Vec<usize> = Vec::with_capacity(idx.len());
    let mut right: Vec<usize> = Vec::new();
    for &i in idx.iter() {
        if data.row(i)[feature] <= threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let mid = left.len();
    idx[..mid].copy_from_slice(&left);
    idx[mid..].copy_from_slice(&right);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: usize, seed: u64) -> Dataset {
        // Label = 1 when x0 in [0.25, 0.5) or [0.75, 1.0): needs depth >= 2.
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let a = rng.f32();
            let b = rng.f32();
            let band = (a * 4.0) as u32 % 2;
            d.push(&[a, b], band as f32);
        }
        d
    }

    #[test]
    fn classification_tree_learns_stripes() {
        let data = stripes(2000, 1);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(2);
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
        let test = stripes(500, 3);
        let correct = (0..test.rows())
            .filter(|&i| (t.predict(test.row(i)) >= 0.5) == (test.y[i] >= 0.5))
            .count();
        assert!(correct > 460, "correct {correct}/500");
    }

    #[test]
    fn depth_limit_respected() {
        let data = stripes(2000, 4);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(5);
        let params = TreeParams {
            max_depth: 3,
            ..Default::default()
        };
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut rng,
        );
        assert!(t.depth() <= 3);
    }

    #[test]
    fn pure_node_stops_growing() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i as f32], 1.0);
        }
        let idx: Vec<usize> = (0..100).collect();
        let mut rng = Rng64::new(6);
        let t = Tree::fit(
            &d,
            &d.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[5.0]), 1.0);
    }

    #[test]
    fn regression_tree_fits_step() {
        let mut d = Dataset::new(1);
        let targets: Vec<f32> = (0..200)
            .map(|i| {
                let x = i as f32 / 200.0;
                d.push(&[x], 0.0);
                if x < 0.5 {
                    -2.0
                } else {
                    3.0
                }
            })
            .collect();
        let idx: Vec<usize> = (0..200).collect();
        let mut rng = Rng64::new(7);
        let t = Tree::fit(
            &d,
            &targets,
            &idx,
            &TreeParams::default(),
            TreeTask::Regression,
            &mut rng,
        );
        assert!((t.predict(&[0.1]) + 2.0).abs() < 0.2);
        assert!((t.predict(&[0.9]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn random_threshold_mode_still_learns() {
        let data = stripes(3000, 8);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(9);
        let params = TreeParams {
            split_mode: SplitMode::RandomThreshold,
            max_depth: 10,
            ..Default::default()
        };
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut rng,
        );
        let correct = (0..data.rows())
            .filter(|&i| (t.predict(data.row(i)) >= 0.5) == (data.y[i] >= 0.5))
            .count();
        assert!(correct as f64 / data.rows() as f64 > 0.8);
    }

    #[test]
    fn partition_is_stable_and_correct() {
        let mut d = Dataset::new(1);
        for v in [5.0f32, 1.0, 3.0, 8.0, 2.0] {
            d.push(&[v], 0.0);
        }
        let mut idx = vec![0, 1, 2, 3, 4];
        let mid = partition(&d, &mut idx, 0, 3.0);
        assert_eq!(mid, 3);
        assert_eq!(&idx[..3], &[1, 2, 4]);
        assert_eq!(&idx[3..], &[0, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot fit a tree on no rows")]
    fn empty_fit_panics() {
        let d = Dataset::new(1);
        let mut rng = Rng64::new(0);
        Tree::fit(
            &d,
            &[],
            &[],
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
    }
}
