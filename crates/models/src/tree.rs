//! CART decision trees: gini classification trees (standalone, forests,
//! extra-trees) and variance-reduction regression trees (gradient boosting).
//!
//! Two performance-critical choices, both with kept reference paths:
//!
//! - **Single-pass split finding** ([`Tree::fit`]): `SplitMode::Exact`
//!   sorts the `(value, target)` pairs of a feature once per node, builds
//!   cumulative `(count, Σtarget, Σtarget²)` moments over the unique
//!   values, and scores every quantile threshold from the prefix arrays —
//!   one sweep instead of the reference's one full `idx` rescan per
//!   candidate threshold (up to 16 per feature per node). Both gini and
//!   variance gains derive from the same moments, so the sweep reproduces
//!   the reference scores: for classification the targets are 0/1 and all
//!   sums are exact f64 integers regardless of accumulation order; for
//!   regression the sums can differ by ulps, which only matters on exact
//!   gain ties that the seeded parity suite shows do not occur in
//!   practice. [`Tree::fit_reference`] keeps the rescan as the oracle.
//! - **Struct-of-arrays node layout**: nodes live in four parallel arrays
//!   (`feat`/`thr`/`left`/`right`, 16 bytes per node vs. 32 for the old
//!   enum) so batched traversal ([`Tree::for_each_prediction`]) streams
//!   rows against hot, dense node data.

use heimdall_nn::Dataset;
use heimdall_trace::rng::Rng64;
use serde::{Deserialize, Serialize};

/// How split thresholds are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitMode {
    /// Scan candidate thresholds for the best gini/variance reduction.
    Exact,
    /// Pick one random threshold per candidate feature (extra-trees style).
    RandomThreshold,
}

/// Tree growth hyperparameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_samples_split: usize,
    /// Number of features considered per split (`0` = all).
    pub max_features: usize,
    /// Threshold selection mode.
    pub split_mode: SplitMode,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 8,
            min_samples_split: 8,
            max_features: 0,
            split_mode: SplitMode::Exact,
        }
    }
}

/// Sentinel in [`Tree::feat`] marking a leaf node.
const LEAF: u32 = u32::MAX;

/// A fitted binary tree predicting a real value in `[0, 1]` (classification)
/// or an unbounded residual (regression). Nodes are stored
/// struct-of-arrays; node 0 is the root and children always have larger
/// ids (DFS order), so equality compares structure and values directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Split feature per node; [`LEAF`] marks a leaf.
    feat: Vec<u32>,
    /// Split threshold for interior nodes; the predicted value for leaves.
    thr: Vec<f32>,
    /// Left child per node (rows with `x[feat] <= thr`); 0 for leaves.
    left: Vec<u32>,
    /// Right child per node; 0 for leaves.
    right: Vec<u32>,
    dim: usize,
}

/// Objective used when growing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeTask {
    /// Gini impurity on binary labels.
    Classification,
    /// Variance reduction on real targets.
    Regression,
}

/// Buffers reused across every node of a fit (and across trees when the
/// caller fits many, via [`Tree::fit_with_scratch`]).
#[derive(Debug, Default)]
pub struct GrowScratch {
    /// `(feature value, target)` pairs, sorted by value per candidate.
    pairs: Vec<(f32, f32)>,
    /// Unique feature values, ascending.
    uniq: Vec<f32>,
    /// Cumulative `[count, Σtarget, Σtarget²]` over pairs with value
    /// `<= uniq[g]`.
    cum: Vec<[f64; 3]>,
    /// Candidate feature index buffer.
    feats: Vec<usize>,
}

/// Immutable per-fit growth context threaded through the recursion.
struct GrowCtx<'a> {
    data: &'a Dataset,
    targets: &'a [f32],
    params: &'a TreeParams,
    task: TreeTask,
    /// `true` = single-pass sweep, `false` = reference rescan.
    fast_exact: bool,
}

impl Tree {
    /// Fits a tree on `data` rows selected by `idx` with targets `targets`
    /// (classification passes the labels, boosting passes residuals).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is empty.
    pub fn fit(
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
    ) -> Tree {
        let mut scratch = GrowScratch::default();
        Self::fit_with_scratch(data, targets, idx, params, task, rng, &mut scratch)
    }

    /// [`Tree::fit`] with caller-owned scratch so ensembles fitting many
    /// trees reuse the sweep buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn fit_with_scratch(
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
        scratch: &mut GrowScratch,
    ) -> Tree {
        Self::fit_impl(data, targets, idx, params, task, rng, scratch, true)
    }

    /// The seed implementation: one full `idx` rescan per candidate
    /// threshold. Kept as the parity oracle for [`Tree::fit`] — both must
    /// grow identical trees (same RNG stream, same tie-breaking).
    pub fn fit_reference(
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
    ) -> Tree {
        let mut scratch = GrowScratch::default();
        Self::fit_impl(data, targets, idx, params, task, rng, &mut scratch, false)
    }

    #[allow(clippy::too_many_arguments)]
    fn fit_impl(
        data: &Dataset,
        targets: &[f32],
        idx: &[usize],
        params: &TreeParams,
        task: TreeTask,
        rng: &mut Rng64,
        scratch: &mut GrowScratch,
        fast_exact: bool,
    ) -> Tree {
        assert!(!idx.is_empty(), "cannot fit a tree on no rows");
        let mut tree = Tree {
            feat: Vec::new(),
            thr: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            dim: data.dim,
        };
        let ctx = GrowCtx {
            data,
            targets,
            params,
            task,
            fast_exact,
        };
        let mut idx = idx.to_vec();
        tree.grow(&ctx, &mut idx, 0, rng, scratch);
        tree
    }

    fn mean(targets: &[f32], idx: &[usize]) -> f32 {
        idx.iter().map(|&i| targets[i]).sum::<f32>() / idx.len() as f32
    }

    /// Impurity * count (so parent - children compares absolute gain).
    fn impurity_sum(targets: &[f32], idx: &[usize], task: TreeTask) -> f64 {
        let n = idx.len() as f64;
        if n == 0.0 {
            return 0.0;
        }
        match task {
            TreeTask::Classification => {
                let p = Self::mean(targets, idx) as f64;
                n * 2.0 * p * (1.0 - p)
            }
            TreeTask::Regression => {
                let m = Self::mean(targets, idx) as f64;
                idx.iter().map(|&i| (targets[i] as f64 - m).powi(2)).sum()
            }
        }
    }

    fn grow(
        &mut self,
        ctx: &GrowCtx,
        idx: &mut [usize],
        depth: usize,
        rng: &mut Rng64,
        scratch: &mut GrowScratch,
    ) -> usize {
        let node_id = self.feat.len();
        self.feat.push(LEAF);
        self.thr.push(Self::mean(ctx.targets, idx));
        self.left.push(0);
        self.right.push(0);
        if depth >= ctx.params.max_depth
            || idx.len() < ctx.params.min_samples_split
            || idx.iter().all(|&i| ctx.targets[i] == ctx.targets[idx[0]])
        {
            return node_id;
        }

        // Candidate features (buffer reused across nodes).
        let n_feats = if ctx.params.max_features == 0 {
            ctx.data.dim
        } else {
            ctx.params.max_features.min(ctx.data.dim)
        };
        let mut feats = std::mem::take(&mut scratch.feats);
        feats.clear();
        feats.extend(0..ctx.data.dim);
        if n_feats < ctx.data.dim {
            rng.shuffle(&mut feats);
            feats.truncate(n_feats);
        }

        let parent = Self::impurity_sum(ctx.targets, idx, ctx.task);
        let mut best: Option<(f64, usize, f32)> = None; // (gain, feature, threshold)
        for &f in &feats {
            match ctx.params.split_mode {
                SplitMode::RandomThreshold => {
                    let (mut lo, mut hi) = (f32::MAX, f32::MIN);
                    for &i in idx.iter() {
                        let v = ctx.data.row(i)[f];
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    if hi <= lo {
                        continue;
                    }
                    let thr = lo + rng.f32() * (hi - lo);
                    if let Some(gain) =
                        split_gain(ctx.data, ctx.targets, idx, f, thr, parent, ctx.task)
                    {
                        if best.is_none_or(|(g, _, _)| gain > g) {
                            best = Some((gain, f, thr));
                        }
                    }
                }
                SplitMode::Exact if ctx.fast_exact => {
                    if let Some((gain, thr)) = exact_split_sweep(ctx, scratch, idx, f, parent) {
                        if best.is_none_or(|(g, _, _)| gain > g) {
                            best = Some((gain, f, thr));
                        }
                    }
                }
                SplitMode::Exact => {
                    // Reference: evaluate up to 16 quantile thresholds of
                    // the feature, rescanning `idx` for each.
                    let mut vals: Vec<f32> = idx.iter().map(|&i| ctx.data.row(i)[f]).collect();
                    vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                    vals.dedup();
                    if vals.len() < 2 {
                        continue;
                    }
                    let steps = 16.min(vals.len() - 1);
                    for s in 1..=steps {
                        let pos = s * (vals.len() - 1) / (steps + 1).max(1);
                        let thr = (vals[pos] + vals[(pos + 1).min(vals.len() - 1)]) / 2.0;
                        if let Some(gain) =
                            split_gain(ctx.data, ctx.targets, idx, f, thr, parent, ctx.task)
                        {
                            if best.is_none_or(|(g, _, _)| gain > g) {
                                best = Some((gain, f, thr));
                            }
                        }
                    }
                }
            }
        }
        scratch.feats = feats;

        let Some((gain, feature, threshold)) = best else {
            return node_id;
        };
        if gain <= 1e-9 {
            return node_id;
        }

        // Partition in place.
        let mid = partition(ctx.data, idx, feature, threshold);
        if mid == 0 || mid == idx.len() {
            return node_id;
        }
        let (left_idx, right_idx) = idx.split_at_mut(mid);
        let left = self.grow(ctx, left_idx, depth + 1, rng, scratch);
        let right = self.grow(ctx, right_idx, depth + 1, rng, scratch);
        self.feat[node_id] = feature as u32;
        self.thr[node_id] = threshold;
        self.left[node_id] = left as u32;
        self.right[node_id] = right as u32;
        node_id
    }

    /// Predicted value for one row.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim`.
    pub fn predict(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.dim, "input dimensionality mismatch");
        let mut n = 0usize;
        loop {
            let f = self.feat[n];
            if f == LEAF {
                return self.thr[n];
            }
            n = if x[f as usize] <= self.thr[n] {
                self.left[n] as usize
            } else {
                self.right[n] as usize
            };
        }
    }

    /// Streams a prediction for every row of `data` in row order — the
    /// batched traversal shared by all tree ensembles. Identical values to
    /// per-row [`Tree::predict`]; the batch shape keeps the flat node
    /// arrays hot across `data`'s contiguous row storage.
    ///
    /// # Panics
    ///
    /// Panics if `data.dim != self.dim`.
    pub fn for_each_prediction(&self, data: &Dataset, mut f: impl FnMut(usize, f32)) {
        assert_eq!(data.dim, self.dim, "input dimensionality mismatch");
        if self.dim == 0 {
            for r in 0..data.rows() {
                f(r, self.thr[0]);
            }
            return;
        }
        for (r, x) in data.x.chunks_exact(self.dim).enumerate() {
            let mut n = 0usize;
            loop {
                let ft = self.feat[n];
                if ft == LEAF {
                    f(r, self.thr[n]);
                    break;
                }
                n = if x[ft as usize] <= self.thr[n] {
                    self.left[n] as usize
                } else {
                    self.right[n] as usize
                };
            }
        }
    }

    /// Number of nodes (descriptor/complexity measure).
    pub fn node_count(&self) -> usize {
        self.feat.len()
    }

    /// Maximum depth reached.
    pub fn depth(&self) -> usize {
        if self.feat.is_empty() {
            return 0;
        }
        let mut stack = vec![(0u32, 0usize)];
        let mut deepest = 0;
        while let Some((n, d)) = stack.pop() {
            let n = n as usize;
            if self.feat[n] == LEAF {
                deepest = deepest.max(d);
            } else {
                stack.push((self.left[n], d + 1));
                stack.push((self.right[n], d + 1));
            }
        }
        deepest
    }
}

/// Reference gain of one candidate threshold: a full `idx` pass
/// accumulating `(count, sum, sum-of-squares)` per side; both gini and
/// variance derive from those moments. `None` when a side is empty.
#[allow(clippy::too_many_arguments)]
fn split_gain(
    data: &Dataset,
    targets: &[f32],
    idx: &[usize],
    feature: usize,
    threshold: f32,
    parent: f64,
    task: TreeTask,
) -> Option<f64> {
    let (mut nl, mut sl, mut ssl) = (0.0f64, 0.0f64, 0.0f64);
    let (mut nr, mut sr, mut ssr) = (0.0f64, 0.0f64, 0.0f64);
    for &i in idx {
        let t = targets[i] as f64;
        if data.row(i)[feature] <= threshold {
            nl += 1.0;
            sl += t;
            ssl += t * t;
        } else {
            nr += 1.0;
            sr += t;
            ssr += t * t;
        }
    }
    if nl == 0.0 || nr == 0.0 {
        return None;
    }
    Some(parent - children_impurity(task, [nl, sl, ssl], [nr, sr, ssr]))
}

/// Weighted child impurity from per-side `[count, sum, sum-of-squares]`
/// moments — the shared scoring kernel of the rescan and the sweep.
fn children_impurity(task: TreeTask, [nl, sl, ssl]: [f64; 3], [nr, sr, ssr]: [f64; 3]) -> f64 {
    match task {
        TreeTask::Classification => {
            let pl = sl / nl;
            let pr = sr / nr;
            nl * 2.0 * pl * (1.0 - pl) + nr * 2.0 * pr * (1.0 - pr)
        }
        TreeTask::Regression => (ssl - sl * sl / nl) + (ssr - sr * sr / nr),
    }
}

/// Single-pass replacement for the per-threshold rescan: sort the
/// feature's `(value, target)` pairs once, fold them into cumulative
/// moments per unique value, then score every quantile threshold from the
/// prefix arrays. Candidate positions, threshold arithmetic, and
/// tie-breaking (first candidate wins on equal gain) mirror the reference
/// loop exactly; the boundary group is resolved with the same `<= thr`
/// comparison the rescan applies, because the midpoint of two adjacent
/// f32 values can round to either endpoint.
fn exact_split_sweep(
    ctx: &GrowCtx,
    sc: &mut GrowScratch,
    idx: &[usize],
    f: usize,
    parent: f64,
) -> Option<(f64, f32)> {
    sc.pairs.clear();
    sc.pairs
        .extend(idx.iter().map(|&i| (ctx.data.row(i)[f], ctx.targets[i])));
    sc.pairs
        .sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    sc.uniq.clear();
    sc.cum.clear();
    let (mut n, mut s, mut ss) = (0.0f64, 0.0f64, 0.0f64);
    for &(v, t) in &sc.pairs {
        if sc.uniq.last() != Some(&v) {
            if !sc.uniq.is_empty() {
                sc.cum.push([n, s, ss]);
            }
            sc.uniq.push(v);
        }
        let t = t as f64;
        n += 1.0;
        s += t;
        ss += t * t;
    }
    sc.cum.push([n, s, ss]);

    let m = sc.uniq.len();
    if m < 2 {
        return None;
    }
    let [nt, st, sst] = *sc.cum.last().expect("cum is non-empty");
    let mut best: Option<(f64, f32)> = None;
    let steps = 16.min(m - 1);
    for s in 1..=steps {
        let pos = s * (m - 1) / (steps + 1).max(1);
        let thr = (sc.uniq[pos] + sc.uniq[(pos + 1).min(m - 1)]) / 2.0;
        let g = if pos + 1 < m && sc.uniq[pos + 1] <= thr {
            pos + 1
        } else {
            pos
        };
        let [nl, sl, ssl] = sc.cum[g];
        let (nr, sr, ssr) = (nt - nl, st - sl, sst - ssl);
        if nl == 0.0 || nr == 0.0 {
            continue;
        }
        let gain = parent - children_impurity(ctx.task, [nl, sl, ssl], [nr, sr, ssr]);
        if best.is_none_or(|(bg, _)| gain > bg) {
            best = Some((gain, thr));
        }
    }
    best
}

/// Stable partition of `idx` by `x[feature] <= threshold`; returns the split
/// point.
fn partition(data: &Dataset, idx: &mut [usize], feature: usize, threshold: f32) -> usize {
    let mut left: Vec<usize> = Vec::with_capacity(idx.len());
    let mut right: Vec<usize> = Vec::new();
    for &i in idx.iter() {
        if data.row(i)[feature] <= threshold {
            left.push(i);
        } else {
            right.push(i);
        }
    }
    let mid = left.len();
    idx[..mid].copy_from_slice(&left);
    idx[mid..].copy_from_slice(&right);
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stripes(n: usize, seed: u64) -> Dataset {
        // Label = 1 when x0 in [0.25, 0.5) or [0.75, 1.0): needs depth >= 2.
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let a = rng.f32();
            let b = rng.f32();
            let band = (a * 4.0) as u32 % 2;
            d.push(&[a, b], band as f32);
        }
        d
    }

    #[test]
    fn classification_tree_learns_stripes() {
        let data = stripes(2000, 1);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(2);
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
        let test = stripes(500, 3);
        let correct = (0..test.rows())
            .filter(|&i| (t.predict(test.row(i)) >= 0.5) == (test.y[i] >= 0.5))
            .count();
        assert!(correct > 460, "correct {correct}/500");
    }

    #[test]
    fn fast_and_reference_growers_build_identical_trees() {
        for seed in 0..6u64 {
            let data = stripes(700, 20 + seed);
            let idx: Vec<usize> = (0..data.rows()).collect();
            for max_features in [0usize, 1] {
                let params = TreeParams {
                    max_features,
                    ..TreeParams::default()
                };
                let fast = Tree::fit(
                    &data,
                    &data.y,
                    &idx,
                    &params,
                    TreeTask::Classification,
                    &mut Rng64::new(seed),
                );
                let reference = Tree::fit_reference(
                    &data,
                    &data.y,
                    &idx,
                    &params,
                    TreeTask::Classification,
                    &mut Rng64::new(seed),
                );
                assert_eq!(fast, reference, "seed {seed} max_features {max_features}");
            }
        }
    }

    #[test]
    fn fast_and_reference_agree_on_regression_targets() {
        let mut rng = Rng64::new(41);
        let mut d = Dataset::new(3);
        let targets: Vec<f32> = (0..600)
            .map(|_| {
                let x = [rng.f32(), rng.f32(), rng.f32()];
                d.push(&x, 0.0);
                (rng.normal(x[0] as f64, 0.3)) as f32
            })
            .collect();
        let idx: Vec<usize> = (0..600).collect();
        let params = TreeParams {
            max_depth: 6,
            ..TreeParams::default()
        };
        let fast = Tree::fit(
            &d,
            &targets,
            &idx,
            &params,
            TreeTask::Regression,
            &mut Rng64::new(1),
        );
        let reference = Tree::fit_reference(
            &d,
            &targets,
            &idx,
            &params,
            TreeTask::Regression,
            &mut Rng64::new(1),
        );
        assert_eq!(fast, reference);
    }

    #[test]
    fn fast_grower_handles_constant_and_duplicate_columns() {
        // Column 1 is constant, column 2 duplicates column 0: the sweep
        // must skip the former and tie-break the latter to the first
        // feature, exactly like the rescan.
        let mut rng = Rng64::new(42);
        let mut d = Dataset::new(3);
        for _ in 0..300 {
            let a = rng.f32();
            d.push(&[a, 7.5, a], if a > 0.6 { 1.0 } else { 0.0 });
        }
        let idx: Vec<usize> = (0..d.rows()).collect();
        let fast = Tree::fit(
            &d,
            &d.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut Rng64::new(0),
        );
        let reference = Tree::fit_reference(
            &d,
            &d.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut Rng64::new(0),
        );
        assert_eq!(fast, reference);
    }

    #[test]
    fn batched_traversal_matches_scalar_predict() {
        let data = stripes(800, 50);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut Rng64::new(51),
        );
        let mut batched = vec![0.0f32; data.rows()];
        t.for_each_prediction(&data, |r, p| batched[r] = p);
        for (i, &b) in batched.iter().enumerate() {
            assert_eq!(b.to_bits(), t.predict(data.row(i)).to_bits());
        }
    }

    #[test]
    fn depth_limit_respected() {
        let data = stripes(2000, 4);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(5);
        let params = TreeParams {
            max_depth: 3,
            ..Default::default()
        };
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut rng,
        );
        assert!(t.depth() <= 3);
    }

    #[test]
    fn pure_node_stops_growing() {
        let mut d = Dataset::new(1);
        for i in 0..100 {
            d.push(&[i as f32], 1.0);
        }
        let idx: Vec<usize> = (0..100).collect();
        let mut rng = Rng64::new(6);
        let t = Tree::fit(
            &d,
            &d.y,
            &idx,
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.predict(&[5.0]), 1.0);
    }

    #[test]
    fn regression_tree_fits_step() {
        let mut d = Dataset::new(1);
        let targets: Vec<f32> = (0..200)
            .map(|i| {
                let x = i as f32 / 200.0;
                d.push(&[x], 0.0);
                if x < 0.5 {
                    -2.0
                } else {
                    3.0
                }
            })
            .collect();
        let idx: Vec<usize> = (0..200).collect();
        let mut rng = Rng64::new(7);
        let t = Tree::fit(
            &d,
            &targets,
            &idx,
            &TreeParams::default(),
            TreeTask::Regression,
            &mut rng,
        );
        assert!((t.predict(&[0.1]) + 2.0).abs() < 0.2);
        assert!((t.predict(&[0.9]) - 3.0).abs() < 0.2);
    }

    #[test]
    fn random_threshold_mode_still_learns() {
        let data = stripes(3000, 8);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let mut rng = Rng64::new(9);
        let params = TreeParams {
            split_mode: SplitMode::RandomThreshold,
            max_depth: 10,
            ..Default::default()
        };
        let t = Tree::fit(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut rng,
        );
        let correct = (0..data.rows())
            .filter(|&i| (t.predict(data.row(i)) >= 0.5) == (data.y[i] >= 0.5))
            .count();
        assert!(correct as f64 / data.rows() as f64 > 0.8);
    }

    #[test]
    fn random_threshold_consumes_the_same_rng_stream_in_both_growers() {
        let data = stripes(900, 10);
        let idx: Vec<usize> = (0..data.rows()).collect();
        let params = TreeParams {
            split_mode: SplitMode::RandomThreshold,
            max_features: 1,
            max_depth: 9,
            ..Default::default()
        };
        let fast = Tree::fit(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut Rng64::new(11),
        );
        let reference = Tree::fit_reference(
            &data,
            &data.y,
            &idx,
            &params,
            TreeTask::Classification,
            &mut Rng64::new(11),
        );
        assert_eq!(fast, reference);
    }

    #[test]
    fn partition_is_stable_and_correct() {
        let mut d = Dataset::new(1);
        for v in [5.0f32, 1.0, 3.0, 8.0, 2.0] {
            d.push(&[v], 0.0);
        }
        let mut idx = vec![0, 1, 2, 3, 4];
        let mid = partition(&d, &mut idx, 0, 3.0);
        assert_eq!(mid, 3);
        assert_eq!(&idx[..3], &[1, 2, 4]);
        assert_eq!(&idx[3..], &[0, 3]);
    }

    #[test]
    #[should_panic(expected = "cannot fit a tree on no rows")]
    fn empty_fit_panics() {
        let d = Dataset::new(1);
        let mut rng = Rng64::new(0);
        Tree::fit(
            &d,
            &[],
            &[],
            &TreeParams::default(),
            TreeTask::Classification,
            &mut rng,
        );
    }
}
