//! AutoML random search over the sixteen classifier families of Fig 18,
//! standing in for auto-sklearn in the paper's §8.2 study.
//!
//! Each candidate samples hyperparameters from a family-specific space,
//! trains on a split of the data, and is scored by validation ROC-AUC. The
//! result keeps per-candidate wall time (Fig 18b's exploration cost) and the
//! winning model's architecture descriptor (Fig 18c's cross-dataset cosine
//! similarity).
//!
//! # Determinism
//!
//! Every candidate draws its hyperparameters from its own RNG, seeded by a
//! SplitMix64 mix of `(cfg.seed, family stable id, candidate index)` — see
//! [`candidate_seed`]. Two consequences:
//!
//! - the search result is byte-identical at any [`AutoMlConfig::jobs`]
//!   count, because no candidate's randomness depends on when (or on which
//!   worker) it runs;
//! - adding or removing a family from [`AutoMlConfig::families`] never
//!   shifts the hyperparameters of the remaining families' candidates,
//!   because seeds derive from the family's *stable* identity (its row in
//!   [`Family::ALL`]), not its position in the configured list.

use crate::{
    AdaBoost, BernoulliNb, Classifier, DecisionTreeClassifier, ExtraTrees, GaussianNb,
    GradientBoosting, KNearestNeighbors, LinearDiscriminant, LinearSvm, MlpWrapper, MultinomialNb,
    PassiveAggressive, QuadraticDiscriminant, RandomForest, RbfSvc, SgdClassifier,
};
use heimdall_nn::Dataset;
use heimdall_trace::rng::Rng64;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The sixteen classifier families of the Fig 18 AutoML study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Stochastic gradient descent (modified Huber).
    Sgd,
    /// Passive-aggressive classifier.
    PassiveAggressive,
    /// Linear support-vector machine.
    Svm,
    /// RBF support-vector classifier.
    Svc,
    /// K-nearest neighbors.
    Knn,
    /// Bernoulli naive Bayes.
    BernoulliNb,
    /// Gaussian naive Bayes.
    GaussianNb,
    /// Multinomial naive Bayes.
    MultinomialNb,
    /// Decision tree.
    DecisionTree,
    /// Quadratic discriminant analysis.
    Qda,
    /// Linear discriminant analysis.
    Lda,
    /// AdaBoost.
    AdaBoost,
    /// Gradient boosting.
    GradientBoosting,
    /// Random forest.
    RandomForest,
    /// Extra trees.
    ExtraTrees,
    /// Multi-layer perceptron.
    Mlp,
}

impl Family {
    /// All sixteen families, in the paper's Fig 18 row order.
    pub const ALL: [Family; 16] = [
        Family::Sgd,
        Family::PassiveAggressive,
        Family::Svm,
        Family::Svc,
        Family::Knn,
        Family::BernoulliNb,
        Family::GaussianNb,
        Family::MultinomialNb,
        Family::DecisionTree,
        Family::Qda,
        Family::Lda,
        Family::AdaBoost,
        Family::GradientBoosting,
        Family::RandomForest,
        Family::ExtraTrees,
        Family::Mlp,
    ];

    /// Stable identity: this family's row in [`Family::ALL`]. Used for
    /// descriptor one-hot slots and candidate seed derivation, so neither
    /// depends on which families a particular search configures.
    pub fn stable_id(self) -> usize {
        match self {
            Family::Sgd => 0,
            Family::PassiveAggressive => 1,
            Family::Svm => 2,
            Family::Svc => 3,
            Family::Knn => 4,
            Family::BernoulliNb => 5,
            Family::GaussianNb => 6,
            Family::MultinomialNb => 7,
            Family::DecisionTree => 8,
            Family::Qda => 9,
            Family::Lda => 10,
            Family::AdaBoost => 11,
            Family::GradientBoosting => 12,
            Family::RandomForest => 13,
            Family::ExtraTrees => 14,
            Family::Mlp => 15,
        }
    }

    /// The paper's Fig 18 row label.
    pub fn paper_name(self) -> &'static str {
        match self {
            Family::Sgd => "Stochastic Gradient Descent",
            Family::PassiveAggressive => "Passive Aggressive Classifier",
            Family::Svm => "Support Vector Machine",
            Family::Svc => "Support Vector Classifier",
            Family::Knn => "K-Nearest Neighbors",
            Family::BernoulliNb => "Bernoulli Naive-Bayes",
            Family::GaussianNb => "Gaussian Naive-Bayes",
            Family::MultinomialNb => "Multinomial Naive-Bayes",
            Family::DecisionTree => "Decision Tree",
            Family::Qda => "Quadratic Discriminant",
            Family::Lda => "Linear Discriminant",
            Family::AdaBoost => "Adaboost",
            Family::GradientBoosting => "Gradient Boosting",
            Family::RandomForest => "Random Forest",
            Family::ExtraTrees => "Extra Trees",
            Family::Mlp => "Multi-Layer Perceptron",
        }
    }

    /// Reference exploration cost in hours from Fig 18b, used to scale the
    /// measured times back to the paper's reported magnitudes.
    pub fn paper_hours(self) -> f64 {
        match self {
            Family::Sgd | Family::PassiveAggressive => 1.9,
            Family::Svm => 3.9,
            Family::Svc => 4.7,
            Family::Knn => 2.8,
            Family::BernoulliNb => 1.9,
            Family::GaussianNb => 1.8,
            Family::MultinomialNb => 1.9,
            Family::DecisionTree => 4.7,
            Family::Qda | Family::Lda => 1.9,
            Family::AdaBoost => 3.6,
            Family::GradientBoosting => 4.3,
            Family::RandomForest => 4.8,
            Family::ExtraTrees => 4.0,
            Family::Mlp => 1.9,
        }
    }

    /// Samples a random-hyperparameter candidate from this family.
    pub fn sample(self, rng: &mut Rng64) -> Box<dyn Classifier> {
        match self {
            Family::Sgd => {
                let mut m = SgdClassifier::default();
                m.lr = 10f32.powf(-(1.0 + rng.f32() * 2.0));
                m.epochs = rng.range(4, 16) as usize;
                Box::new(m)
            }
            Family::PassiveAggressive => {
                let mut m = PassiveAggressive::default();
                m.c = 0.1 + rng.f32() * 2.0;
                m.epochs = rng.range(4, 12) as usize;
                Box::new(m)
            }
            Family::Svm => {
                let mut m = LinearSvm::default();
                m.lr = 10f32.powf(-(1.0 + rng.f32() * 2.0));
                m.epochs = rng.range(6, 16) as usize;
                Box::new(m)
            }
            Family::Svc => {
                let mut m = RbfSvc::default();
                m.gamma = 2f32.powf(rng.f32() * 4.0 - 2.0);
                m.n_features = [64, 128, 256][rng.below(3) as usize];
                Box::new(m)
            }
            Family::Knn => {
                let mut m = KNearestNeighbors::default();
                m.k = [3, 5, 9, 15][rng.below(4) as usize];
                Box::new(m)
            }
            Family::BernoulliNb => Box::new(BernoulliNb::default()),
            Family::GaussianNb => Box::new(GaussianNb::default()),
            Family::MultinomialNb => Box::new(MultinomialNb::default()),
            Family::DecisionTree => {
                let mut t = DecisionTreeClassifier::default();
                t.params.max_depth = rng.range(3, 15) as usize;
                Box::new(t)
            }
            Family::Qda => Box::new(QuadraticDiscriminant::default()),
            Family::Lda => Box::new(LinearDiscriminant::default()),
            Family::AdaBoost => {
                let mut m = AdaBoost::default();
                m.n_rounds = rng.range(10, 50) as usize;
                m.stump_depth = rng.range(1, 4) as usize;
                Box::new(m)
            }
            Family::GradientBoosting => {
                let mut m = GradientBoosting::default();
                m.n_rounds = rng.range(20, 60) as usize;
                m.learning_rate = 0.05 + rng.f32() * 0.3;
                m.max_depth = rng.range(2, 6) as usize;
                Box::new(m)
            }
            Family::RandomForest => {
                let mut m = RandomForest::default();
                m.n_trees = rng.range(10, 50) as usize;
                m.max_depth = rng.range(4, 12) as usize;
                Box::new(m)
            }
            Family::ExtraTrees => Box::new(ExtraTrees::default()),
            Family::Mlp => {
                let widths = [[32usize, 8], [64, 16], [128, 16]];
                let w = widths[rng.below(3) as usize];
                let mut m = MlpWrapper::default();
                m.hidden = w.to_vec();
                m.seed = rng.next_u64();
                Box::new(m)
            }
        }
    }

    /// Samples candidate number `candidate` of this family from its own
    /// derived RNG — see [`candidate_seed`] and the module-level
    /// determinism notes.
    pub fn sample_seeded(self, base_seed: u64, candidate: usize) -> Box<dyn Classifier> {
        let mut rng = Rng64::new(candidate_seed(base_seed, self, candidate as u64));
        self.sample(&mut rng)
    }
}

/// SplitMix64-style seed for one `(family, candidate)` search cell:
/// distinct odd-multiplier increments separate the family and candidate
/// axes before the finalizer scrambles them. The family axis uses
/// [`Family::stable_id`], never the family's position in the configured
/// list.
pub fn candidate_seed(base: u64, family: Family, candidate: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(1 + family.stable_id() as u64))
        .wrapping_add(0x632b_e591_96d9_a2bbu64.wrapping_mul(1 + candidate));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// AutoML search configuration.
#[derive(Debug, Clone)]
pub struct AutoMlConfig {
    /// Candidates per family.
    pub candidates_per_family: usize,
    /// Families to explore (defaults to all sixteen).
    pub families: Vec<Family>,
    /// Validation fraction of the training data.
    pub val_fraction: f64,
    /// Deterministic seed.
    pub seed: u64,
    /// Worker threads for the candidate search (clamped to at least 1).
    /// Results are byte-identical at any value — see the module-level
    /// determinism notes.
    pub jobs: usize,
}

impl Default for AutoMlConfig {
    fn default() -> Self {
        AutoMlConfig {
            candidates_per_family: 2,
            families: Family::ALL.to_vec(),
            val_fraction: 0.3,
            seed: 0,
            jobs: 1,
        }
    }
}

/// One explored candidate.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CandidateReport {
    /// Family row label.
    pub family: String,
    /// Validation ROC-AUC.
    pub auc: f64,
    /// Measured training + validation wall time.
    pub seconds: f64,
    /// Architecture descriptor.
    pub descriptor: Vec<f64>,
}

/// Search outcome.
pub struct AutoMlResult {
    /// The best fitted model.
    pub best: Box<dyn Classifier>,
    /// Best candidate's validation AUC.
    pub best_auc: f64,
    /// Best candidate's family label.
    pub best_family: String,
    /// Every explored candidate.
    pub reports: Vec<CandidateReport>,
    /// Total measured exploration wall time.
    pub total_seconds: f64,
}

impl AutoMlResult {
    /// JSON digest of everything deterministic in the result — candidate
    /// order, families, AUCs (`{:?}` shortest-roundtrip floats), and
    /// descriptors — excluding the measured wall times. Byte-identical
    /// across runs at any job count; the parity suite diffs it directly.
    pub fn deterministic_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        write!(
            s,
            "{{\"best_family\":{:?},\"best_auc\":{:?},\"candidates\":[",
            self.best_family, self.best_auc
        )
        .expect("write to String");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write!(
                s,
                "{{\"family\":{:?},\"auc\":{:?},\"descriptor\":{:?}}}",
                r.family, r.auc, r.descriptor
            )
            .expect("write to String");
        }
        s.push_str("]}");
        s
    }
}

/// Output of one `(family, candidate)` search cell, before the canonical
/// merge.
struct CellOutput {
    model: Box<dyn Classifier>,
    auc: f64,
    seconds: f64,
    descriptor: Vec<f64>,
}

/// The search driver.
pub struct AutoMl;

impl AutoMl {
    /// Runs the random search.
    ///
    /// With `cfg.jobs > 1` the candidate cells are claimed off a shared
    /// counter by a scoped worker pool; the merge then walks the cells in
    /// their canonical order (configured family order, candidate index
    /// within family), so reports, the winner, and every tie-break match
    /// the serial search exactly.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or the config lists no families.
    pub fn run(data: &Dataset, cfg: &AutoMlConfig) -> AutoMlResult {
        assert!(!data.is_empty(), "empty dataset");
        assert!(!cfg.families.is_empty(), "no families configured");
        let (train, val) = data.split(1.0 - cfg.val_fraction);
        assert!(
            !train.is_empty() && !val.is_empty(),
            "split produced an empty side"
        );

        let started = Instant::now();
        let cells: Vec<(Family, usize)> = cfg
            .families
            .iter()
            .flat_map(|&f| (0..cfg.candidates_per_family).map(move |c| (f, c)))
            .collect();
        let jobs = cfg.jobs.clamp(1, cells.len().max(1));

        let outputs: Vec<CellOutput> = if jobs <= 1 {
            cells
                .iter()
                .map(|&(family, c)| Self::run_cell(&train, &val, cfg.seed, family, c))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<CellOutput>>> =
                cells.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..jobs {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(family, c)) = cells.get(i) else {
                            break;
                        };
                        let out = Self::run_cell(&train, &val, cfg.seed, family, c);
                        *slots[i].lock().expect("cell slot lock") = Some(out);
                    });
                }
            });
            slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .expect("cell slot lock")
                        .expect("worker filled every claimed cell")
                })
                .collect()
        };

        let mut reports = Vec::with_capacity(outputs.len());
        let mut best: Option<(Box<dyn Classifier>, f64, String)> = None;
        for (&(family, _), out) in cells.iter().zip(outputs) {
            reports.push(CandidateReport {
                family: family.paper_name().to_string(),
                auc: out.auc,
                seconds: out.seconds,
                descriptor: out.descriptor,
            });
            // Strict `>`: the earliest cell in canonical order wins ties,
            // matching the serial search.
            if best.as_ref().is_none_or(|(_, b, _)| out.auc > *b) {
                best = Some((out.model, out.auc, family.paper_name().to_string()));
            }
        }
        let (best, best_auc, best_family) = best.expect("at least one candidate");
        AutoMlResult {
            best,
            best_auc,
            best_family,
            reports,
            total_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Trains and scores one candidate cell. Pure in everything but the
    /// wall-time measurement: the model depends only on
    /// `(seed, family, candidate)` and the data split.
    fn run_cell(
        train: &Dataset,
        val: &Dataset,
        seed: u64,
        family: Family,
        candidate: usize,
    ) -> CellOutput {
        let t0 = Instant::now();
        let mut model = family.sample_seeded(seed, candidate);
        model.fit(train);
        let auc = crate::evaluate_auc(model.as_ref(), val);
        let descriptor = model.descriptor();
        CellOutput {
            model,
            auc,
            seconds: t0.elapsed().as_secs_f64(),
            descriptor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize, seed: u64) -> Dataset {
        let mut rng = Rng64::new(seed);
        let mut d = Dataset::new(2);
        for _ in 0..n {
            let a = rng.f32();
            let b = rng.f32();
            d.push(&[a, b], if a + b > 1.0 { 1.0 } else { 0.0 });
        }
        d
    }

    #[test]
    fn search_finds_a_competent_model() {
        let data = toy(2000, 1);
        let cfg = AutoMlConfig {
            candidates_per_family: 1,
            families: vec![Family::Lda, Family::GaussianNb, Family::DecisionTree],
            ..Default::default()
        };
        let result = AutoMl::run(&data, &cfg);
        assert!(result.best_auc > 0.9, "auc {}", result.best_auc);
        assert_eq!(result.reports.len(), 3);
    }

    #[test]
    fn all_sixteen_families_sample_and_fit() {
        let data = toy(400, 2);
        let mut rng = Rng64::new(3);
        for family in Family::ALL {
            let mut m = family.sample(&mut rng);
            m.fit(&data);
            let p = m.predict(data.row(0));
            assert!((0.0..=1.0).contains(&p), "{}", family.paper_name());
        }
    }

    #[test]
    fn family_names_match_fig18_rows() {
        assert_eq!(Family::ALL.len(), 16);
        let names: Vec<_> = Family::ALL.iter().map(|f| f.paper_name()).collect();
        assert!(names.contains(&"Random Forest"));
        assert!(names.contains(&"Quadratic Discriminant"));
    }

    #[test]
    fn deterministic_given_seed() {
        let data = toy(600, 4);
        let cfg = AutoMlConfig {
            candidates_per_family: 1,
            families: vec![Family::DecisionTree, Family::Lda],
            seed: 99,
            ..Default::default()
        };
        let a = AutoMl::run(&data, &cfg);
        let b = AutoMl::run(&data, &cfg);
        assert_eq!(a.best_auc, b.best_auc);
        assert_eq!(a.best_family, b.best_family);
    }

    #[test]
    fn stable_ids_index_family_all() {
        for (i, f) in Family::ALL.iter().enumerate() {
            assert_eq!(f.stable_id(), i, "{}", f.paper_name());
        }
    }

    #[test]
    fn job_count_does_not_change_results() {
        let data = toy(900, 6);
        let serial = AutoMl::run(
            &data,
            &AutoMlConfig {
                candidates_per_family: 2,
                families: vec![Family::DecisionTree, Family::Lda, Family::GaussianNb],
                seed: 7,
                jobs: 1,
                ..Default::default()
            },
        );
        let parallel = AutoMl::run(
            &data,
            &AutoMlConfig {
                candidates_per_family: 2,
                families: vec![Family::DecisionTree, Family::Lda, Family::GaussianNb],
                seed: 7,
                jobs: 3,
                ..Default::default()
            },
        );
        assert_eq!(serial.deterministic_json(), parallel.deterministic_json());
        let probe = toy(32, 8);
        for i in 0..probe.rows() {
            assert_eq!(
                serial.best.predict(probe.row(i)).to_bits(),
                parallel.best.predict(probe.row(i)).to_bits()
            );
        }
    }

    #[test]
    fn family_insertion_does_not_shift_other_candidates() {
        let data = toy(700, 9);
        let narrow = AutoMl::run(
            &data,
            &AutoMlConfig {
                candidates_per_family: 2,
                families: vec![Family::DecisionTree, Family::Lda],
                seed: 11,
                ..Default::default()
            },
        );
        let wide = AutoMl::run(
            &data,
            &AutoMlConfig {
                candidates_per_family: 2,
                families: vec![Family::DecisionTree, Family::GaussianNb, Family::Lda],
                seed: 11,
                ..Default::default()
            },
        );
        let pick = |r: &AutoMlResult, fam: &str| -> Vec<(f64, Vec<f64>)> {
            r.reports
                .iter()
                .filter(|c| c.family == fam)
                .map(|c| (c.auc, c.descriptor.clone()))
                .collect()
        };
        for fam in ["Decision Tree", "Linear Discriminant"] {
            assert_eq!(pick(&narrow, fam), pick(&wide, fam), "{fam}");
        }
    }

    #[test]
    fn candidate_seeds_are_distinct_across_cells() {
        let mut seen = std::collections::HashSet::new();
        for f in Family::ALL {
            for c in 0..8 {
                assert!(seen.insert(candidate_seed(42, f, c)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "no families configured")]
    fn empty_families_panics() {
        let data = toy(100, 5);
        AutoMl::run(
            &data,
            &AutoMlConfig {
                families: vec![],
                ..Default::default()
            },
        );
    }
}
