//! Property-style tests on the device model's simulation invariants.
//!
//! The build environment has no crates.io access, so instead of proptest
//! these run each invariant over many randomized cases drawn from the
//! in-tree deterministic generator — same coverage philosophy (random
//! chronological streams across seeds), fully reproducible, no shrinking.

use heimdall_ssd::{DeviceConfig, SsdDevice};
use heimdall_trace::rng::Rng64;
use heimdall_trace::{IoOp, IoRequest, PAGE_SIZE};

const CASES: u64 = 64;

/// Random chronological request stream (1-200 requests).
fn random_stream(rng: &mut Rng64) -> Vec<IoRequest> {
    let n = rng.range(1, 200) as usize;
    let mut t = 0u64;
    (0..n)
        .map(|i| {
            t += rng.range(1, 5_000);
            IoRequest {
                id: i as u64,
                arrival_us: t,
                offset: (i as u64) * PAGE_SIZE as u64,
                size: rng.range(1, 256) as u32 * PAGE_SIZE,
                op: if rng.chance(0.5) {
                    IoOp::Read
                } else {
                    IoOp::Write
                },
            }
        })
        .collect()
}

#[test]
fn completions_are_causal_and_finite() {
    let mut rng = Rng64::new(0x55dc_0001);
    for case in 0..CASES {
        let stream = random_stream(&mut rng);
        let mut dev = SsdDevice::new(DeviceConfig::datacenter_nvme(), case);
        for req in &stream {
            let done = dev.submit(req, req.arrival_us);
            // Service can never finish before it starts, and never starts
            // before the request arrives.
            assert!(done.start_us >= req.arrival_us, "case {case}");
            assert!(done.finish_us > done.start_us, "case {case}");
            assert_eq!(
                done.latency_us,
                done.finish_us - req.arrival_us,
                "case {case}"
            );
            // Bounded: nothing in this model can exceed minutes of latency
            // for these small streams.
            assert!(done.latency_us < 600_000_000, "case {case}");
        }
    }
}

#[test]
fn queue_length_never_exceeds_outstanding() {
    let mut rng = Rng64::new(0x55dc_0002);
    for case in 0..CASES {
        let stream = random_stream(&mut rng);
        let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), case);
        for (submitted, req) in stream.iter().enumerate() {
            let q = dev.queue_len(req.arrival_us);
            assert!(
                q as usize <= submitted,
                "case {case}: queue {q} > submitted {submitted}"
            );
            dev.submit(req, req.arrival_us);
        }
    }
}

#[test]
fn identical_seeds_identical_behaviour() {
    let mut rng = Rng64::new(0x55dc_0003);
    for case in 0..CASES {
        let stream = random_stream(&mut rng);
        let run = |seed: u64| {
            let mut dev = SsdDevice::new(DeviceConfig::femu_emulated(), seed);
            stream
                .iter()
                .map(|r| dev.submit(r, r.arrival_us))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(case), run(case), "case {case}");
    }
}

#[test]
fn busy_log_intervals_are_well_formed() {
    let mut rng = Rng64::new(0x55dc_0004);
    for case in 0..CASES {
        let stream = random_stream(&mut rng);
        let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), case);
        for req in &stream {
            dev.submit(req, req.arrival_us);
        }
        for b in dev.busy_log() {
            assert!(b.end_us > b.start_us, "case {case}");
            assert!(b.amp >= 1.0, "case {case}");
        }
    }
}
