//! Property-based tests on the device model's simulation invariants.

use heimdall_ssd::{DeviceConfig, SsdDevice};
use heimdall_trace::{IoOp, IoRequest, PAGE_SIZE};
use proptest::prelude::*;

/// Arbitrary chronological request stream.
fn arb_stream() -> impl Strategy<Value = Vec<IoRequest>> {
    proptest::collection::vec((1u64..5_000, 1u32..256, any::<bool>()), 1..200).prop_map(
        |rows| {
            let mut t = 0u64;
            rows.into_iter()
                .enumerate()
                .map(|(i, (gap, pages, read))| {
                    t += gap;
                    IoRequest {
                        id: i as u64,
                        arrival_us: t,
                        offset: (i as u64) * PAGE_SIZE as u64,
                        size: pages * PAGE_SIZE,
                        op: if read { IoOp::Read } else { IoOp::Write },
                    }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn completions_are_causal_and_finite(stream in arb_stream(), seed in 0u64..1000) {
        let mut dev = SsdDevice::new(DeviceConfig::datacenter_nvme(), seed);
        for req in &stream {
            let done = dev.submit(req, req.arrival_us);
            // Service can never finish before it starts, and never starts
            // before the request arrives.
            prop_assert!(done.start_us >= req.arrival_us);
            prop_assert!(done.finish_us > done.start_us);
            prop_assert_eq!(done.latency_us, done.finish_us - req.arrival_us);
            // Bounded: nothing in this model can exceed minutes of latency
            // for these small streams.
            prop_assert!(done.latency_us < 600_000_000);
        }
    }

    #[test]
    fn queue_length_never_exceeds_outstanding(stream in arb_stream(), seed in 0u64..1000) {
        let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), seed);
        let mut submitted = 0u32;
        for req in &stream {
            let q = dev.queue_len(req.arrival_us);
            prop_assert!(q <= submitted, "queue {} > submitted {}", q, submitted);
            dev.submit(req, req.arrival_us);
            submitted += 1;
        }
    }

    #[test]
    fn identical_seeds_identical_behaviour(stream in arb_stream(), seed in 0u64..1000) {
        let run = |seed: u64| {
            let mut dev = SsdDevice::new(DeviceConfig::femu_emulated(), seed);
            stream.iter().map(|r| dev.submit(r, r.arrival_us)).collect::<Vec<_>>()
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    #[test]
    fn busy_log_intervals_are_well_formed(stream in arb_stream(), seed in 0u64..1000) {
        let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), seed);
        for req in &stream {
            dev.submit(req, req.arrival_us);
        }
        for b in dev.busy_log() {
            prop_assert!(b.end_us > b.start_us);
            prop_assert!(b.amp >= 1.0);
        }
    }
}
