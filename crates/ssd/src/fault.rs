//! Scripted fault injection for the simulated device.
//!
//! §2 and §7 of the paper motivate admission control with devices that
//! *fail slow* rather than fail clean; related work (KML, "Towards Learned
//! Predictability of Storage Systems") frames fail-slow anticipation and
//! safe degradation as the open problems for learned storage. This module
//! provides the injection half: a [`FaultPlan`] is a validated timeline of
//! fault windows layered on [`crate::SsdDevice`] so the event engines above
//! see faults purely as latency or availability changes — no new event
//! types, no rng perturbation on the fault-free path.
//!
//! Three fault classes are modeled:
//!
//! - **fail-slow** — every service time inside the window is multiplied by
//!   a constant factor (a sick drive that still answers, slowly),
//! - **firmware stall** — the device keeps accepting I/O but completes
//!   nothing until the window ends (service start is deferred to the window
//!   end, so the stall surfaces as pure added latency),
//! - **fail-stop** — submissions inside the window are rejected outright
//!   ([`crate::SsdDevice::try_submit`] returns [`DeviceUnavailable`]); the
//!   replica is gone until the outage lifts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The injected fault class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Sustained fail-slow: service times are multiplied by
    /// [`FaultWindow::multiplier`].
    FailSlow,
    /// Firmware stall: accepted I/Os complete only after the window ends.
    FirmwareStall,
    /// Fail-stop outage: submissions are rejected for the window's duration.
    FailStop,
}

/// One scripted fault window, active on `[start_us, end_us)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultWindow {
    /// Window start, microseconds (inclusive).
    pub start_us: u64,
    /// Window end, microseconds (exclusive).
    pub end_us: u64,
    /// Fault class.
    pub kind: FaultKind,
    /// Service-time multiplier; only [`FaultKind::FailSlow`] reads it, the
    /// other kinds carry `1.0`.
    pub multiplier: f64,
}

/// Why a fault script failed [`FaultPlan::try_new`] validation.
///
/// The variants carry the offending values so negative tests (and error
/// reports) can assert the exact rejection, not just "some string".
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A window is empty or inverted (`end_us <= start_us`).
    ZeroLengthWindow {
        /// The window's start.
        start_us: u64,
        /// The window's (offending) end.
        end_us: u64,
    },
    /// A multiplier is not finite or is below 1.
    BadMultiplier {
        /// The offending multiplier.
        multiplier: f64,
    },
    /// Windows are out of start order.
    Unsorted {
        /// Start of the earlier-listed window.
        prev_start_us: u64,
        /// Start of the later-listed window that precedes it in time.
        next_start_us: u64,
    },
    /// Two in-order windows overlap.
    Overlapping {
        /// End of the earlier window.
        prev_end_us: u64,
        /// Start of the later window, inside the earlier one.
        next_start_us: u64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultPlanError::ZeroLengthWindow { start_us, end_us } => {
                write!(f, "fault window [{start_us}, {end_us}) is empty or inverted")
            }
            FaultPlanError::BadMultiplier { multiplier } => {
                write!(f, "fault multiplier {multiplier} must be finite and >= 1")
            }
            FaultPlanError::Unsorted {
                prev_start_us,
                next_start_us,
            } => write!(
                f,
                "fault windows unsorted: start {next_start_us} listed after start {prev_start_us}"
            ),
            FaultPlanError::Overlapping {
                prev_end_us,
                next_start_us,
            } => write!(
                f,
                "fault window starting at {next_start_us} overlaps previous window ending at {prev_end_us}"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A validated, time-ordered script of fault windows for one device.
///
/// The default plan is empty — a healthy device — and an empty plan costs
/// one branch per submission, leaving fault-free replays bit-identical to
/// a build without this module.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// The empty (healthy-device) plan.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builds a plan from windows, validating the script.
    ///
    /// Windows must be non-empty intervals (`end > start`), sorted by start
    /// time, non-overlapping, and carry a finite multiplier `>= 1`.
    pub fn try_new(windows: Vec<FaultWindow>) -> Result<FaultPlan, FaultPlanError> {
        for w in &windows {
            if w.end_us <= w.start_us {
                return Err(FaultPlanError::ZeroLengthWindow {
                    start_us: w.start_us,
                    end_us: w.end_us,
                });
            }
            if !w.multiplier.is_finite() || w.multiplier < 1.0 {
                return Err(FaultPlanError::BadMultiplier {
                    multiplier: w.multiplier,
                });
            }
        }
        for pair in windows.windows(2) {
            if pair[1].start_us < pair[0].start_us {
                return Err(FaultPlanError::Unsorted {
                    prev_start_us: pair[0].start_us,
                    next_start_us: pair[1].start_us,
                });
            }
            if pair[1].start_us < pair[0].end_us {
                return Err(FaultPlanError::Overlapping {
                    prev_end_us: pair[0].end_us,
                    next_start_us: pair[1].start_us,
                });
            }
        }
        Ok(FaultPlan { windows })
    }

    /// Single sustained fail-slow window with the given latency multiplier.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the multiplier is not finite `>= 1`.
    pub fn fail_slow(start_us: u64, end_us: u64, multiplier: f64) -> FaultPlan {
        Self::try_new(vec![FaultWindow {
            start_us,
            end_us,
            kind: FaultKind::FailSlow,
            multiplier,
        }])
        .expect("invalid fail-slow window")
    }

    /// Single firmware-stall window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn firmware_stall(start_us: u64, end_us: u64) -> FaultPlan {
        Self::try_new(vec![FaultWindow {
            start_us,
            end_us,
            kind: FaultKind::FirmwareStall,
            multiplier: 1.0,
        }])
        .expect("invalid firmware-stall window")
    }

    /// Single fail-stop outage window.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn fail_stop(start_us: u64, end_us: u64) -> FaultPlan {
        Self::try_new(vec![FaultWindow {
            start_us,
            end_us,
            kind: FaultKind::FailStop,
            multiplier: 1.0,
        }])
        .expect("invalid fail-stop window")
    }

    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The validated windows, in time order.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// The window active at `now_us`, if any.
    pub fn active_at(&self, now_us: u64) -> Option<FaultWindow> {
        if self.windows.is_empty() {
            return None;
        }
        let i = self.windows.partition_point(|w| w.end_us <= now_us);
        self.windows
            .get(i)
            .copied()
            .filter(|w| w.start_us <= now_us)
    }
}

/// Degradation counters a faulted device accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Submissions rejected inside a fail-stop outage.
    pub rejected: u64,
    /// Submissions whose service start was deferred by a firmware stall.
    pub stalled: u64,
    /// Submissions whose service time was amplified by a fail-slow window.
    pub slowed: u64,
}

/// Error returned by [`crate::SsdDevice::try_submit`] while the device sits
/// inside a fail-stop outage window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceUnavailable {
    /// When the outage window ends and submissions are accepted again.
    pub until_us: u64,
}

impl fmt::Display for DeviceUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "device unavailable (fail-stop) until {}us",
            self.until_us
        )
    }
}

impl std::error::Error for DeviceUnavailable {}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(start_us: u64, end_us: u64, kind: FaultKind) -> FaultWindow {
        FaultWindow {
            start_us,
            end_us,
            kind,
            multiplier: 1.0,
        }
    }

    #[test]
    fn empty_plan_is_never_active() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert_eq!(p.active_at(0), None);
        assert_eq!(p.active_at(u64::MAX), None);
    }

    #[test]
    fn active_window_lookup_respects_half_open_bounds() {
        let p = FaultPlan::try_new(vec![
            w(100, 200, FaultKind::FailStop),
            w(300, 400, FaultKind::FirmwareStall),
        ])
        .unwrap();
        assert_eq!(p.active_at(99), None);
        assert_eq!(p.active_at(100).unwrap().kind, FaultKind::FailStop);
        assert_eq!(p.active_at(199).unwrap().kind, FaultKind::FailStop);
        assert_eq!(p.active_at(200), None);
        assert_eq!(p.active_at(299), None);
        assert_eq!(p.active_at(350).unwrap().kind, FaultKind::FirmwareStall);
        assert_eq!(p.active_at(400), None);
    }

    #[test]
    fn validation_rejects_bad_scripts_with_exact_variants() {
        assert_eq!(
            FaultPlan::try_new(vec![w(10, 10, FaultKind::FailStop)]).unwrap_err(),
            FaultPlanError::ZeroLengthWindow {
                start_us: 10,
                end_us: 10
            }
        );
        assert_eq!(
            FaultPlan::try_new(vec![w(20, 10, FaultKind::FailStop)]).unwrap_err(),
            FaultPlanError::ZeroLengthWindow {
                start_us: 20,
                end_us: 10
            }
        );
        assert_eq!(
            FaultPlan::try_new(vec![
                w(0, 100, FaultKind::FailSlow),
                w(50, 150, FaultKind::FailStop),
            ])
            .unwrap_err(),
            FaultPlanError::Overlapping {
                prev_end_us: 100,
                next_start_us: 50
            }
        );
        assert_eq!(
            FaultPlan::try_new(vec![
                w(100, 200, FaultKind::FailSlow),
                w(0, 50, FaultKind::FailStop),
            ])
            .unwrap_err(),
            FaultPlanError::Unsorted {
                prev_start_us: 100,
                next_start_us: 0
            }
        );
        let mut bad = w(0, 10, FaultKind::FailSlow);
        bad.multiplier = 0.5;
        assert_eq!(
            FaultPlan::try_new(vec![bad]).unwrap_err(),
            FaultPlanError::BadMultiplier { multiplier: 0.5 }
        );
        bad.multiplier = f64::NAN;
        assert!(matches!(
            FaultPlan::try_new(vec![bad]).unwrap_err(),
            FaultPlanError::BadMultiplier { multiplier } if multiplier.is_nan()
        ));
        bad.multiplier = f64::INFINITY;
        assert!(matches!(
            FaultPlan::try_new(vec![bad]).unwrap_err(),
            FaultPlanError::BadMultiplier { .. }
        ));
        // Touching-but-disjoint windows are fine: end is exclusive.
        assert!(FaultPlan::try_new(vec![
            w(0, 100, FaultKind::FailSlow),
            w(100, 150, FaultKind::FailStop),
        ])
        .is_ok());
    }

    #[test]
    fn convenience_builders_produce_single_windows() {
        let p = FaultPlan::fail_slow(5, 50, 25.0);
        assert_eq!(p.windows().len(), 1);
        assert_eq!(p.active_at(5).unwrap().multiplier, 25.0);
        assert_eq!(
            FaultPlan::firmware_stall(0, 9).active_at(3).unwrap().kind,
            FaultKind::FirmwareStall
        );
        assert_eq!(
            FaultPlan::fail_stop(0, 9).active_at(3).unwrap().kind,
            FaultKind::FailStop
        );
    }
}
