//! Device configuration and presets.
//!
//! The presets approximate the device families the paper tests on (§6):
//! a datacenter NVMe drive (Samsung 970 PRO-like), a consumer NVMe drive
//! (Samsung PM961-like), a SATA datacenter drive (Intel DC S3610-like), and
//! a FEMU-style emulated device used in the Ceph evaluation (§6.3). The
//! parameters are not vendor specifications; they are chosen so the model
//! reproduces the *behavioural* envelope the paper relies on — microsecond
//! base reads, 1-10% slow periods under load, and contention amplification
//! up to the ~60× the literature reports for GC interference.

use serde::{Deserialize, Serialize};

/// Full parametric description of one simulated flash device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human-readable model tag.
    pub model: String,
    /// Fixed cost of a NAND read (controller + flash sense), microseconds.
    pub read_base_us: f64,
    /// Sequential read bandwidth, bytes per microsecond (MB/s ÷ ~1.05e0).
    pub read_bw_bpus: f64,
    /// Fixed cost of buffering a write, microseconds.
    pub write_base_us: f64,
    /// Write-buffer ingest bandwidth, bytes per microsecond.
    pub write_bw_bpus: f64,
    /// Number of internal channels serving requests concurrently.
    pub parallelism: usize,

    /// DRAM write-buffer capacity in bytes.
    pub buffer_capacity: u64,
    /// Buffer drain (flush-to-NAND) bandwidth, bytes per microsecond.
    pub drain_bw_bpus: f64,
    /// Contention multiplier applied to reads while an urgent buffer flush
    /// is in progress.
    pub flush_amp: f64,

    /// Over-provisioned free-space pool in bytes; writes consume it.
    pub free_pool: u64,
    /// GC starts when the free pool drops below this fraction.
    pub gc_threshold: f64,
    /// Mean GC busy-interval duration, microseconds.
    pub gc_duration_us: f64,
    /// Read-latency amplification range while GC runs (sampled per event).
    pub gc_amp: (f64, f64),
    /// Fraction of the free pool reclaimed by one GC pass.
    pub gc_reclaim: f64,

    /// Mean gap between wear-leveling events, microseconds.
    pub wear_leveling_interval_us: f64,
    /// Mean wear-leveling busy duration, microseconds.
    pub wear_leveling_duration_us: f64,
    /// Read amplification during wear leveling.
    pub wear_leveling_amp: f64,

    /// Probability that a read issued during a busy interval collides with
    /// the internally-busy die/channel and suffers the event's full
    /// amplification; non-colliding reads see only [`Self::busy_light_amp`].
    /// GC/flush/wear-leveling serialize one die at a time, so only a
    /// fraction of concurrent reads stall hard.
    pub busy_collision_prob: f64,
    /// Mild slowdown applied to non-colliding reads during busy intervals
    /// (controller contention, shared bus).
    pub busy_light_amp: f64,

    /// Probability a read hits the device DRAM cache (immune to internal
    /// contention — the "lucky" fast outliers of §3.2 stage 1).
    pub cache_hit_prob: f64,
    /// Cache-hit fixed latency, microseconds.
    pub cache_read_us: f64,

    /// Probability a read in a quiet period suffers a transient slowdown
    /// (read retry / ECC, §3.2 stage 2).
    pub transient_slow_prob: f64,
    /// Amplification range for transient slowdowns.
    pub transient_amp: (f64, f64),

    /// Multiplicative log-normal jitter sigma applied to every service time.
    pub jitter_sigma: f64,
}

impl DeviceConfig {
    /// Datacenter NVMe similar in envelope to the Samsung 970 PRO used for
    /// the large-scale evaluation (§6.1).
    pub fn datacenter_nvme() -> Self {
        DeviceConfig {
            model: "samsung-970pro-like".into(),
            read_base_us: 80.0,
            read_bw_bpus: 3000.0,
            write_base_us: 25.0,
            write_bw_bpus: 2300.0,
            parallelism: 8,
            buffer_capacity: 512 << 20,
            drain_bw_bpus: 1200.0,
            flush_amp: 6.0,
            free_pool: 1536 << 20,
            gc_threshold: 0.25,
            gc_duration_us: 60_000.0,
            gc_amp: (8.0, 60.0),
            gc_reclaim: 0.4,
            wear_leveling_interval_us: 20_000_000.0,
            wear_leveling_duration_us: 15_000.0,
            wear_leveling_amp: 6.0,
            busy_collision_prob: 0.30,
            busy_light_amp: 2.0,
            cache_hit_prob: 0.08,
            cache_read_us: 12.0,
            transient_slow_prob: 0.002,
            transient_amp: (5.0, 20.0),
            jitter_sigma: 0.08,
        }
    }

    /// Consumer NVMe (Samsung PM961-like): smaller buffer and free pool, so
    /// it falls into GC sooner; used in the heterogeneous kernel test (§6.2).
    pub fn consumer_nvme() -> Self {
        DeviceConfig {
            model: "samsung-pm961-like".into(),
            read_base_us: 95.0,
            read_bw_bpus: 2200.0,
            write_base_us: 30.0,
            write_bw_bpus: 1500.0,
            parallelism: 4,
            buffer_capacity: 128 << 20,
            drain_bw_bpus: 600.0,
            flush_amp: 8.0,
            free_pool: 1 << 30,
            gc_threshold: 0.30,
            gc_duration_us: 90_000.0,
            gc_amp: (10.0, 60.0),
            gc_reclaim: 0.45,
            wear_leveling_interval_us: 12_000_000.0,
            wear_leveling_duration_us: 25_000.0,
            wear_leveling_amp: 8.0,
            busy_collision_prob: 0.35,
            busy_light_amp: 2.5,
            cache_hit_prob: 0.06,
            cache_read_us: 14.0,
            transient_slow_prob: 0.003,
            transient_amp: (5.0, 25.0),
            jitter_sigma: 0.10,
        }
    }

    /// SATA datacenter drive (Intel DC S3610-like): comparable base read
    /// latency to consumer NVMe but much lower bandwidth and steadier
    /// internals — the heterogeneity of the §6.2 pair is behavioural
    /// (different GC cadence/amplification), not a static speed gap.
    pub fn sata_datacenter() -> Self {
        DeviceConfig {
            model: "intel-dc-s3610-like".into(),
            read_base_us: 110.0,
            read_bw_bpus: 520.0,
            write_base_us: 55.0,
            write_bw_bpus: 450.0,
            parallelism: 4,
            buffer_capacity: 256 << 20,
            drain_bw_bpus: 400.0,
            flush_amp: 5.0,
            free_pool: 1 << 30,
            gc_threshold: 0.22,
            gc_duration_us: 70_000.0,
            gc_amp: (6.0, 40.0),
            gc_reclaim: 0.4,
            wear_leveling_interval_us: 25_000_000.0,
            wear_leveling_duration_us: 20_000.0,
            wear_leveling_amp: 5.0,
            busy_collision_prob: 0.30,
            busy_light_amp: 2.0,
            cache_hit_prob: 0.07,
            cache_read_us: 20.0,
            transient_slow_prob: 0.002,
            transient_amp: (4.0, 15.0),
            jitter_sigma: 0.07,
        }
    }

    /// FEMU-style emulated SSD (100 GB) as used for the Ceph OSDs (§6.3).
    pub fn femu_emulated() -> Self {
        DeviceConfig {
            model: "femu-emulated".into(),
            read_base_us: 70.0,
            read_bw_bpus: 1600.0,
            write_base_us: 20.0,
            write_bw_bpus: 1200.0,
            parallelism: 8,
            buffer_capacity: 64 << 20,
            drain_bw_bpus: 800.0,
            flush_amp: 6.0,
            free_pool: 1 << 30,
            gc_threshold: 0.28,
            gc_duration_us: 50_000.0,
            gc_amp: (8.0, 50.0),
            gc_reclaim: 0.5,
            wear_leveling_interval_us: 15_000_000.0,
            wear_leveling_duration_us: 12_000.0,
            wear_leveling_amp: 6.0,
            busy_collision_prob: 0.30,
            busy_light_amp: 2.0,
            cache_hit_prob: 0.08,
            cache_read_us: 10.0,
            transient_slow_prob: 0.002,
            transient_amp: (5.0, 18.0),
            jitter_sigma: 0.09,
        }
    }

    /// Validates invariants; returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.parallelism == 0 {
            return Err("parallelism must be at least 1".into());
        }
        if self.read_bw_bpus <= 0.0 || self.write_bw_bpus <= 0.0 || self.drain_bw_bpus <= 0.0 {
            return Err("bandwidths must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.gc_threshold) {
            return Err("gc_threshold must be in [0,1]".into());
        }
        if !(0.0..=1.0).contains(&self.cache_hit_prob)
            || !(0.0..=1.0).contains(&self.transient_slow_prob)
            || !(0.0..=1.0).contains(&self.busy_collision_prob)
        {
            return Err("probabilities must be in [0,1]".into());
        }
        if self.busy_light_amp < 1.0 {
            return Err("busy_light_amp must be at least 1".into());
        }
        if self.gc_amp.0 > self.gc_amp.1 || self.transient_amp.0 > self.transient_amp.1 {
            return Err("amplification ranges must be ordered".into());
        }
        if !(0.0..=1.0).contains(&self.gc_reclaim) {
            return Err("gc_reclaim must be in [0,1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        for cfg in [
            DeviceConfig::datacenter_nvme(),
            DeviceConfig::consumer_nvme(),
            DeviceConfig::sata_datacenter(),
            DeviceConfig::femu_emulated(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.model));
        }
    }

    #[test]
    fn validate_rejects_zero_parallelism() {
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.parallelism = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.cache_hit_prob = 1.5;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_amp_range() {
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.gc_amp = (10.0, 2.0);
        assert!(cfg.validate().is_err());
    }
}
