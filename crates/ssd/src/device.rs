//! The black-box SSD state machine.
//!
//! The device serves requests FCFS across `parallelism` internal channels
//! and runs three kinds of background activity that contend with reads:
//! garbage collection (triggered when the over-provisioned free pool runs
//! low), urgent write-buffer flushes (when the DRAM buffer overflows), and
//! periodic wear leveling. While such an interval is active, NAND reads are
//! amplified by a per-event factor; a small fraction of reads hit the device
//! DRAM cache and stay fast anyway (the §3.2 "lucky" outliers), and reads in
//! quiet periods occasionally suffer transient retry/ECC slowdowns (the
//! opposite outliers).
//!
//! Policies must treat the device as a black box: only [`Completion`]
//! latencies and [`SsdDevice::queue_len`] are observable. The internal busy
//! log is exposed *for evaluation only* (scoring labeling accuracy, Fig 5a).

use crate::config::DeviceConfig;
use crate::fault::{DeviceUnavailable, FaultKind, FaultPlan, FaultPlanError, FaultStats};
use heimdall_trace::rng::Rng64;
use heimdall_trace::{IoOp, IoRequest};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why [`SsdDevice::try_new`] (or [`SsdDevice::try_new_with_plan`])
/// rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// The [`DeviceConfig`] failed validation; the message names the field.
    InvalidConfig(String),
    /// The fault script failed [`FaultPlan::try_new`] validation.
    InvalidFaultPlan(FaultPlanError),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::InvalidConfig(msg) => write!(f, "invalid device config: {msg}"),
            DeviceError::InvalidFaultPlan(e) => write!(f, "invalid fault plan: {e}"),
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<FaultPlanError> for DeviceError {
    fn from(e: FaultPlanError) -> Self {
        DeviceError::InvalidFaultPlan(e)
    }
}

/// Flat 4-ary min-heap of completion times. The replayers query
/// [`SsdDevice::queue_len`] before every read, so this sits on the replay
/// hot path: keys are bare `u64`s on one contiguous `Vec` (four children
/// share a cache line) and the sifts move a hole instead of swapping.
/// Duplicate finish times are indistinguishable, so no tie-break sequence
/// is needed.
#[derive(Debug, Clone, Default)]
struct FinishHeap {
    heap: Vec<u64>,
}

impl FinishHeap {
    fn len(&self) -> usize {
        self.heap.len()
    }

    fn peek(&self) -> Option<u64> {
        self.heap.first().copied()
    }

    fn push(&mut self, t: u64) {
        self.heap.push(t);
        let mut i = self.heap.len() - 1;
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent] <= t {
                break;
            }
            self.heap[i] = self.heap[parent];
            i = parent;
        }
        self.heap[i] = t;
    }

    fn pop(&mut self) {
        let last = match self.heap.pop() {
            Some(v) => v,
            None => return,
        };
        if self.heap.is_empty() {
            return;
        }
        let n = self.heap.len();
        let mut i = 0;
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut best = first;
            for c in first + 1..(first + 4).min(n) {
                if self.heap[c] < self.heap[best] {
                    best = c;
                }
            }
            if self.heap[best] >= last {
                break;
            }
            self.heap[i] = self.heap[best];
            i = best;
        }
        self.heap[i] = last;
    }
}

/// Why the device was internally busy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusyKind {
    /// Garbage collection.
    Gc,
    /// Urgent write-buffer flush.
    Flush,
    /// Wear leveling.
    WearLeveling,
}

/// One internal contention interval (ground truth for evaluation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusyInterval {
    /// Interval start, microseconds.
    pub start_us: u64,
    /// Interval end (exclusive), microseconds.
    pub end_us: u64,
    /// Cause.
    pub kind: BusyKind,
    /// Read-latency multiplier during the interval.
    pub amp: f64,
}

/// Result of submitting one request to the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Completion {
    /// When the request began service.
    pub start_us: u64,
    /// When the request completed.
    pub finish_us: u64,
    /// End-to-end latency including queueing, microseconds.
    pub latency_us: u64,
    /// Device queue length observed at arrival (outstanding requests).
    pub queue_len: u32,
    /// Ground truth: the device was internally busy when service started.
    /// **Evaluation only** — never expose to a policy.
    pub internally_busy: bool,
}

/// Running counters, mostly for tests and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Reads served.
    pub reads: u64,
    /// Writes served.
    pub writes: u64,
    /// GC passes triggered.
    pub gc_events: u64,
    /// Urgent flushes triggered.
    pub flush_events: u64,
    /// Wear-leveling passes.
    pub wear_leveling_events: u64,
    /// Reads that hit the DRAM cache.
    pub cache_hits: u64,
    /// Reads that suffered a transient slowdown.
    pub transient_events: u64,
}

/// A simulated black-box flash device.
#[derive(Debug, Clone)]
pub struct SsdDevice {
    cfg: DeviceConfig,
    rng: Rng64,
    /// Free time of each internal channel.
    servers: Vec<u64>,
    /// Outstanding completion times (min-heap) for queue-length queries.
    inflight: FinishHeap,
    /// End of the current internal busy interval.
    busy_until: u64,
    /// Amplification of the current busy interval.
    busy_amp: f64,
    /// Bytes sitting in the DRAM write buffer.
    buffer_fill: f64,
    last_drain_us: u64,
    /// Remaining over-provisioned bytes.
    free_bytes: f64,
    wear_leveling_next_us: u64,
    /// End of the current urgent-flush episode (suppresses re-triggering).
    flush_until: u64,
    busy_log: Vec<BusyInterval>,
    stats: DeviceStats,
    /// Scripted injected faults (empty for a healthy device).
    faults: FaultPlan,
    fault_stats: FaultStats,
}

impl SsdDevice {
    /// Creates a device with the given configuration and deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`DeviceConfig::validate`]).
    /// Prefer [`SsdDevice::try_new`] when the configuration is derived
    /// programmatically.
    pub fn new(cfg: DeviceConfig, seed: u64) -> Self {
        Self::try_new(cfg, seed).expect("invalid device config")
    }

    /// Fallible [`SsdDevice::new`]: returns the typed validation error
    /// instead of panicking on a bad configuration.
    pub fn try_new(cfg: DeviceConfig, seed: u64) -> Result<Self, DeviceError> {
        cfg.validate().map_err(DeviceError::InvalidConfig)?;
        let mut rng = Rng64::new(seed ^ 0x5353_445f_5349_4d00); // "SSD_SIM"
        let first_wl = rng.exponential(cfg.wear_leveling_interval_us) as u64;
        // A deployed drive sits in steady state, not freshly trimmed: start
        // the free pool a modest margin above the GC trigger so background
        // activity appears early in a trace instead of only near its end.
        let headroom = 0.05 + 0.25 * rng.f64();
        let initial_free = (cfg.gc_threshold + headroom).min(1.0) * cfg.free_pool as f64;
        Ok(SsdDevice {
            servers: vec![0; cfg.parallelism],
            free_bytes: initial_free,
            inflight: FinishHeap::default(),
            busy_until: 0,
            busy_amp: 1.0,
            buffer_fill: 0.0,
            last_drain_us: 0,
            flush_until: 0,
            wear_leveling_next_us: first_wl,
            busy_log: Vec::new(),
            stats: DeviceStats::default(),
            faults: FaultPlan::none(),
            fault_stats: FaultStats::default(),
            rng,
            cfg,
        })
    }

    /// Constructs a device and validates a raw fault script in one step —
    /// the single entry point for configs *and* fault timelines sourced
    /// from outside the crate (sweep CLIs, generated test inputs).
    pub fn try_new_with_plan(
        cfg: DeviceConfig,
        seed: u64,
        windows: Vec<crate::fault::FaultWindow>,
    ) -> Result<Self, DeviceError> {
        let plan = FaultPlan::try_new(windows)?;
        Ok(Self::try_new(cfg, seed)?.with_fault_plan(plan))
    }

    /// Attaches a scripted fault plan (builder form).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Attaches a scripted fault plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The device's fault plan (empty for a healthy device).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Degradation counters accumulated from the fault plan.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault_stats
    }

    /// `false` while the device sits inside a fail-stop outage window —
    /// submissions at `now` would be rejected.
    pub fn is_available(&self, now: u64) -> bool {
        !matches!(
            self.faults.active_at(now),
            Some(w) if w.kind == FaultKind::FailStop
        )
    }

    /// Earliest time at or after `now` when submissions are accepted
    /// (`now` itself for an available device).
    pub fn next_available_at(&self, now: u64) -> u64 {
        match self.faults.active_at(now) {
            Some(w) if w.kind == FaultKind::FailStop => w.end_us,
            _ => now,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Running counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Outstanding requests at time `now` (the queue-length feature).
    pub fn queue_len(&mut self, now: u64) -> u32 {
        while let Some(t) = self.inflight.peek() {
            if t <= now {
                self.inflight.pop();
            } else {
                break;
            }
        }
        self.inflight.len() as u32
    }

    /// Ground-truth internal busy intervals. **Evaluation only.**
    pub fn busy_log(&self) -> &[BusyInterval] {
        &self.busy_log
    }

    /// Ground truth: was the device internally busy at `t`? **Evaluation only.**
    pub fn was_busy_at(&self, t: u64) -> bool {
        // The log is append-ordered by start; intervals may overlap after
        // merges, so scan backwards over the recent tail.
        self.busy_log
            .iter()
            .rev()
            .take(64)
            .any(|b| b.start_us <= t && t < b.end_us)
            || self
                .busy_log
                .iter()
                .any(|b| b.start_us <= t && t < b.end_us)
    }

    fn begin_busy(&mut self, start_us: u64, duration_us: f64, kind: BusyKind, amp: f64) {
        let end = start_us + duration_us.max(1.0) as u64;
        if start_us < self.busy_until {
            // Overlapping events compound: keep the stronger amplification
            // and the later end.
            self.busy_amp = self.busy_amp.max(amp);
            self.busy_until = self.busy_until.max(end);
        } else {
            self.busy_amp = amp;
            self.busy_until = end;
        }
        self.busy_log.push(BusyInterval {
            start_us,
            end_us: end,
            kind,
            amp,
        });
    }

    /// Advances lazy internal state (buffer drain, wear-leveling schedule).
    fn advance(&mut self, now: u64) {
        if now > self.last_drain_us {
            let drained = (now - self.last_drain_us) as f64 * self.cfg.drain_bw_bpus;
            self.buffer_fill = (self.buffer_fill - drained).max(0.0);
            self.last_drain_us = now;
        }
        while self.wear_leveling_next_us <= now {
            let at = self.wear_leveling_next_us;
            let dur = self.rng.exponential(self.cfg.wear_leveling_duration_us);
            let amp = self.cfg.wear_leveling_amp;
            self.begin_busy(at, dur, BusyKind::WearLeveling, amp);
            self.stats.wear_leveling_events += 1;
            self.wear_leveling_next_us =
                at + (self.rng.exponential(self.cfg.wear_leveling_interval_us) as u64).max(1);
        }
    }

    fn jitter(&mut self) -> f64 {
        if self.cfg.jitter_sigma <= 0.0 {
            1.0
        } else {
            self.rng.log_normal(0.0, self.cfg.jitter_sigma)
        }
    }

    /// Submits a request arriving at `now`; returns its completion.
    ///
    /// Requests must be submitted in non-decreasing arrival order.
    ///
    /// # Panics
    ///
    /// Panics if the device is inside a fail-stop outage window (check
    /// [`SsdDevice::is_available`] or use [`SsdDevice::try_submit`] when a
    /// fault plan may reject), and in debug builds if `now` precedes the
    /// previous submission.
    pub fn submit(&mut self, req: &IoRequest, now: u64) -> Completion {
        self.submit_inner(req, now, true)
            .expect("device is inside a fail-stop outage window")
    }

    /// Fallible [`SsdDevice::submit`]: returns [`DeviceUnavailable`] instead
    /// of panicking while a fail-stop outage window is active. A rejected
    /// submission consumes no randomness and mutates no device state beyond
    /// the rejection counter.
    pub fn try_submit(
        &mut self,
        req: &IoRequest,
        now: u64,
    ) -> Result<Completion, DeviceUnavailable> {
        self.submit_inner(req, now, true)
    }

    /// Fallible [`SsdDevice::submit_untracked`].
    pub fn try_submit_untracked(
        &mut self,
        req: &IoRequest,
        now: u64,
    ) -> Result<Completion, DeviceUnavailable> {
        self.submit_inner(req, now, false)
    }

    /// [`SsdDevice::submit`] without queue-length tracking: the inflight
    /// finish-heap is neither drained nor grown, and the returned
    /// [`Completion::queue_len`] is always 0.
    ///
    /// The inflight heap exists only to answer [`SsdDevice::queue_len`]; it
    /// feeds nothing else (service times come from the channel free times,
    /// and the rng stream is untouched), so on replay paths where no policy
    /// observes the queue length — e.g. the stateless wide-scale policies —
    /// this skips pure bookkeeping and every other completion field is
    /// identical to [`SsdDevice::submit`]. Do not mix with
    /// [`SsdDevice::queue_len`] on the same device: untracked submissions
    /// are invisible to it.
    ///
    /// # Panics
    ///
    /// Panics if a fail-stop outage window is active, and in debug builds if
    /// `now` precedes the previous submission.
    pub fn submit_untracked(&mut self, req: &IoRequest, now: u64) -> Completion {
        self.submit_inner(req, now, false)
            .expect("device is inside a fail-stop outage window")
    }

    fn submit_inner(
        &mut self,
        req: &IoRequest,
        now: u64,
        track: bool,
    ) -> Result<Completion, DeviceUnavailable> {
        debug_assert!(
            now >= self.last_drain_us,
            "submissions must be chronological"
        );
        // The fault lookup is one branch on the empty plan, and rejection
        // happens before any rng draw or state advance, so a fault-free run
        // and a rejected submission both leave the stochastic state of the
        // device untouched.
        let fault = self.faults.active_at(now);
        if let Some(w) = fault {
            if w.kind == FaultKind::FailStop {
                self.fault_stats.rejected += 1;
                return Err(DeviceUnavailable { until_us: w.end_us });
            }
        }
        self.advance(now);
        let queue_len = if track { self.queue_len(now) } else { 0 };

        // Earliest-free channel.
        let (idx, &free) = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("parallelism >= 1");
        let mut start = now.max(free);
        if let Some(w) = fault {
            if w.kind == FaultKind::FirmwareStall && start < w.end_us {
                // The controller accepts the request but completes nothing
                // until the stall clears: service begins at the window end.
                start = w.end_us;
                self.fault_stats.stalled += 1;
            }
        }
        let busy_now = start < self.busy_until;
        let amp_now = if busy_now { self.busy_amp } else { 1.0 };

        let service_us = match req.op {
            IoOp::Write => self.write_service(req, start),
            IoOp::Read => self.read_service(req, busy_now, amp_now),
        };
        let mut service_us = (service_us * self.jitter()).max(1.0);
        if let Some(w) = fault {
            if w.kind == FaultKind::FailSlow {
                self.fault_stats.slowed += 1;
                service_us *= w.multiplier;
            }
        }
        let finish = start + service_us as u64;
        self.servers[idx] = finish;
        if track {
            self.inflight.push(finish);
        }
        Ok(Completion {
            start_us: start,
            finish_us: finish,
            latency_us: finish - now,
            queue_len,
            internally_busy: busy_now,
        })
    }

    fn write_service(&mut self, req: &IoRequest, start: u64) -> f64 {
        self.stats.writes += 1;
        let size = req.size as f64;
        let transfer = size / self.cfg.write_bw_bpus;
        let mut service = self.cfg.write_base_us + transfer;

        if self.buffer_fill + size > self.cfg.buffer_capacity as f64 {
            // Urgent flush: the write stalls until its overflow drains, and
            // — once per overflow episode — the drain traffic contends with
            // reads until the buffer is back to a comfortable level.
            let overflow = self.buffer_fill + size - self.cfg.buffer_capacity as f64;
            let stall = overflow / self.cfg.drain_bw_bpus;
            if start >= self.flush_until {
                let drain_to_ok = (self.buffer_fill - 0.7 * self.cfg.buffer_capacity as f64)
                    .max(0.0)
                    / self.cfg.drain_bw_bpus;
                self.begin_busy(start, drain_to_ok, BusyKind::Flush, self.cfg.flush_amp);
                self.flush_until = start + drain_to_ok.max(1.0) as u64;
                self.stats.flush_events += 1;
            }
            self.buffer_fill = self.cfg.buffer_capacity as f64;
            service += stall;
        } else {
            self.buffer_fill += size;
        }

        // Writes consume the free pool; a low pool triggers GC.
        self.free_bytes -= size;
        if self.free_bytes / self.cfg.free_pool as f64 <= self.cfg.gc_threshold {
            let dur = self.rng.log_normal(self.cfg.gc_duration_us.ln(), 0.4);
            let (lo, hi) = self.cfg.gc_amp;
            let amp = lo + self.rng.f64() * (hi - lo);
            self.begin_busy(start, dur, BusyKind::Gc, amp);
            self.stats.gc_events += 1;
            self.free_bytes = (self.free_bytes + self.cfg.gc_reclaim * self.cfg.free_pool as f64)
                .min(self.cfg.free_pool as f64);
        }
        service
    }

    fn read_service(&mut self, req: &IoRequest, busy: bool, amp: f64) -> f64 {
        self.stats.reads += 1;
        let size = req.size as f64;
        let nand = self.cfg.read_base_us + size / self.cfg.read_bw_bpus;
        if self.rng.chance(self.cfg.cache_hit_prob) {
            // DRAM hit: fast regardless of internal contention.
            self.stats.cache_hits += 1;
            return self.cfg.cache_read_us + size / (self.cfg.read_bw_bpus * 4.0);
        }
        if busy {
            // Only reads colliding with the internally-busy die stall for
            // the event's full amplification; the rest see mild contention.
            return if self.rng.chance(self.cfg.busy_collision_prob) {
                nand * amp
            } else {
                nand * self.cfg.busy_light_amp
            };
        }
        if self.rng.chance(self.cfg.transient_slow_prob) {
            self.stats.transient_events += 1;
            let (lo, hi) = self.cfg.transient_amp;
            return nand * (lo + self.rng.f64() * (hi - lo));
        }
        nand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heimdall_trace::PAGE_SIZE;

    fn read(id: u64, t: u64, size: u32) -> IoRequest {
        IoRequest {
            id,
            arrival_us: t,
            offset: 0,
            size,
            op: IoOp::Read,
        }
    }

    fn write(id: u64, t: u64, size: u32) -> IoRequest {
        IoRequest {
            id,
            arrival_us: t,
            offset: 0,
            size,
            op: IoOp::Write,
        }
    }

    fn quiet_config() -> DeviceConfig {
        // No stochastic noise so base behaviour is exact.
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.cache_hit_prob = 0.0;
        cfg.transient_slow_prob = 0.0;
        cfg.jitter_sigma = 0.0;
        cfg.wear_leveling_interval_us = 1e15;
        cfg.busy_collision_prob = 1.0;
        cfg
    }

    #[test]
    fn idle_read_latency_is_base_plus_transfer() {
        let cfg = quiet_config();
        let expect = cfg.read_base_us + PAGE_SIZE as f64 / cfg.read_bw_bpus;
        let mut dev = SsdDevice::new(cfg, 1);
        let c = dev.submit(&read(0, 1000, PAGE_SIZE), 1000);
        assert!(
            (c.latency_us as f64 - expect).abs() <= 1.0,
            "{} vs {expect}",
            c.latency_us
        );
        assert!(!c.internally_busy);
    }

    #[test]
    fn bigger_reads_take_longer() {
        let mut dev = SsdDevice::new(quiet_config(), 2);
        let small = dev.submit(&read(0, 0, PAGE_SIZE), 0).latency_us;
        let big = dev
            .submit(&read(1, 10_000_000, 2 << 20), 10_000_000)
            .latency_us;
        assert!(big > small * 3, "big {big} small {small}");
    }

    #[test]
    fn queueing_delays_when_channels_saturated() {
        let mut cfg = quiet_config();
        cfg.parallelism = 1;
        let mut dev = SsdDevice::new(cfg, 3);
        let c1 = dev.submit(&read(0, 0, PAGE_SIZE), 0);
        let c2 = dev.submit(&read(1, 0, PAGE_SIZE), 0);
        assert_eq!(c2.start_us, c1.finish_us);
        assert!(c2.latency_us > c1.latency_us);
    }

    #[test]
    fn queue_len_counts_outstanding() {
        let mut cfg = quiet_config();
        cfg.parallelism = 1;
        let mut dev = SsdDevice::new(cfg, 4);
        assert_eq!(dev.queue_len(0), 0);
        let c = dev.submit(&read(0, 0, PAGE_SIZE), 0);
        dev.submit(&read(1, 0, PAGE_SIZE), 0);
        assert_eq!(dev.queue_len(0), 2);
        assert_eq!(dev.queue_len(c.finish_us), 1);
        assert_eq!(dev.queue_len(c.finish_us * 10), 0);
    }

    #[test]
    fn sustained_writes_trigger_gc() {
        let mut cfg = quiet_config();
        cfg.free_pool = 64 << 20; // tiny pool so the test is quick
        let mut dev = SsdDevice::new(cfg, 5);
        let mut t = 0;
        for i in 0..2_000 {
            dev.submit(&write(i, t, 256 * 1024), t);
            t += 50;
        }
        assert!(
            dev.stats().gc_events > 0,
            "expected GC under write pressure"
        );
        assert!(dev.busy_log().iter().any(|b| b.kind == BusyKind::Gc));
    }

    #[test]
    fn reads_amplified_during_gc() {
        let mut cfg = quiet_config();
        cfg.free_pool = 8 << 20;
        cfg.gc_duration_us = 500_000.0;
        cfg.gc_amp = (20.0, 20.0);
        let mut dev = SsdDevice::new(cfg, 6);
        // Push writes until a GC fires.
        let mut t = 0;
        while dev.stats().gc_events == 0 {
            dev.submit(&write(0, t, 1 << 20), t);
            t += 20;
        }
        let quiet = DeviceConfig::datacenter_nvme().read_base_us;
        let c = dev.submit(&read(1, t + 1, PAGE_SIZE), t + 1);
        assert!(c.internally_busy);
        assert!(
            (c.latency_us as f64) > quiet * 10.0,
            "busy read should be amplified, got {}",
            c.latency_us
        );
    }

    #[test]
    fn cache_hits_stay_fast_during_busy_periods() {
        let mut cfg = quiet_config();
        cfg.cache_hit_prob = 1.0; // force hits
        cfg.free_pool = 8 << 20;
        cfg.gc_duration_us = 500_000.0;
        let mut dev = SsdDevice::new(cfg, 7);
        let mut t = 0;
        while dev.stats().gc_events == 0 {
            dev.submit(&write(0, t, 1 << 20), t);
            t += 20;
        }
        let c = dev.submit(&read(1, t + 1, PAGE_SIZE), t + 1);
        assert!(c.internally_busy);
        assert!(
            c.latency_us < 100,
            "cache hit should be fast, got {}",
            c.latency_us
        );
        assert!(dev.stats().cache_hits > 0);
    }

    #[test]
    fn transient_slowdowns_occur_in_quiet_periods() {
        let mut cfg = quiet_config();
        cfg.transient_slow_prob = 1.0;
        let mut dev = SsdDevice::new(cfg, 8);
        let c = dev.submit(&read(0, 0, PAGE_SIZE), 0);
        assert!(!c.internally_busy);
        assert!(c.latency_us as f64 > cfg_read_floor() * 4.0);
        assert_eq!(dev.stats().transient_events, 1);
    }

    fn cfg_read_floor() -> f64 {
        DeviceConfig::datacenter_nvme().read_base_us
    }

    #[test]
    fn wear_leveling_fires_on_schedule() {
        let mut cfg = quiet_config();
        cfg.wear_leveling_interval_us = 10_000.0;
        let mut dev = SsdDevice::new(cfg, 9);
        for i in 0..100 {
            let t = i * 10_000;
            dev.submit(&read(i, t, PAGE_SIZE), t);
        }
        assert!(dev.stats().wear_leveling_events > 3);
    }

    #[test]
    fn device_is_deterministic() {
        let run = |seed| {
            let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), seed);
            (0..500u64)
                .map(|i| {
                    let t = i * 100;
                    let req = if i % 3 == 0 {
                        write(i, t, 64 * 1024)
                    } else {
                        read(i, t, PAGE_SIZE)
                    };
                    dev.submit(&req, t).latency_us
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }

    #[test]
    fn busy_log_matches_was_busy_at() {
        let mut cfg = quiet_config();
        cfg.free_pool = 8 << 20;
        let mut dev = SsdDevice::new(cfg, 13);
        let mut t = 0;
        for i in 0..5_000 {
            dev.submit(&write(i, t, 512 * 1024), t);
            t += 30;
        }
        let log = dev.busy_log().to_vec();
        assert!(!log.is_empty());
        for b in log.iter().take(10) {
            assert!(dev.was_busy_at(b.start_us));
            assert!(dev.was_busy_at((b.start_us + b.end_us) / 2));
        }
    }

    #[test]
    fn finish_heap_matches_sorted_model() {
        let mut h = FinishHeap::default();
        let mut rng = Rng64::new(0xf1);
        let mut model: Vec<u64> = Vec::new();
        for _ in 0..500 {
            if model.is_empty() || rng.below(3) > 0 {
                let t = rng.below(1000);
                h.push(t);
                model.push(t);
            } else {
                model.sort_unstable();
                assert_eq!(h.peek(), Some(model[0]));
                h.pop();
                model.remove(0);
            }
        }
        model.sort_unstable();
        for &t in &model {
            assert_eq!(h.peek(), Some(t));
            h.pop();
        }
        assert_eq!(h.peek(), None);
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn untracked_submit_matches_tracked_except_queue_len() {
        let mut tracked = SsdDevice::new(DeviceConfig::femu_emulated(), 17);
        let mut untracked = SsdDevice::new(DeviceConfig::femu_emulated(), 17);
        let mut rng = Rng64::new(0xab);
        let mut t = 0;
        for i in 0..2_000u64 {
            t += rng.below(200);
            let req = if rng.chance(0.3) {
                write(i, t, 1 << 20)
            } else {
                read(i, t, PAGE_SIZE * (1 + rng.below(16) as u32))
            };
            let a = tracked.submit(&req, t);
            let b = untracked.submit_untracked(&req, t);
            assert_eq!((a.start_us, a.finish_us, a.latency_us), {
                (b.start_us, b.finish_us, b.latency_us)
            });
            assert_eq!(a.internally_busy, b.internally_busy);
            assert_eq!(b.queue_len, 0);
        }
        assert_eq!(untracked.inflight.len(), 0, "no inflight bookkeeping");
        assert_eq!(tracked.stats(), untracked.stats());
    }

    #[test]
    #[should_panic(expected = "invalid device config")]
    fn invalid_config_panics() {
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.parallelism = 0;
        SsdDevice::new(cfg, 0);
    }

    #[test]
    fn try_new_returns_validation_error() {
        let mut cfg = DeviceConfig::datacenter_nvme();
        cfg.parallelism = 0;
        let err = SsdDevice::try_new(cfg, 0).unwrap_err();
        match &err {
            DeviceError::InvalidConfig(msg) => assert!(msg.contains("parallelism"), "{msg}"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
        assert!(SsdDevice::try_new(DeviceConfig::datacenter_nvme(), 0).is_ok());
    }

    #[test]
    fn try_new_with_plan_surfaces_fault_script_errors() {
        use crate::fault::{FaultKind, FaultPlanError, FaultWindow};
        let bad = vec![FaultWindow {
            start_us: 10,
            end_us: 10,
            kind: FaultKind::FailStop,
            multiplier: 1.0,
        }];
        let err =
            SsdDevice::try_new_with_plan(DeviceConfig::datacenter_nvme(), 0, bad).unwrap_err();
        assert_eq!(
            err,
            DeviceError::InvalidFaultPlan(FaultPlanError::ZeroLengthWindow {
                start_us: 10,
                end_us: 10
            })
        );
        let ok = SsdDevice::try_new_with_plan(
            DeviceConfig::datacenter_nvme(),
            0,
            vec![FaultWindow {
                start_us: 0,
                end_us: 100,
                kind: FaultKind::FailSlow,
                multiplier: 4.0,
            }],
        )
        .unwrap();
        assert!(!ok.fault_plan().is_empty());
    }

    #[test]
    fn fail_slow_window_multiplies_service_time() {
        let mk = |plan| SsdDevice::new(quiet_config(), 21).with_fault_plan(plan);
        let mut healthy = mk(FaultPlan::none());
        let mut sick = mk(FaultPlan::fail_slow(1_000, 2_000, 25.0));
        // Before the window: identical.
        let a = healthy.submit(&read(0, 0, PAGE_SIZE), 0);
        let b = sick.submit(&read(0, 0, PAGE_SIZE), 0);
        assert_eq!(a, b);
        // Inside the window: ~25x the healthy latency.
        let a = healthy.submit(&read(1, 1_500, PAGE_SIZE), 1_500);
        let b = sick.submit(&read(1, 1_500, PAGE_SIZE), 1_500);
        assert!(
            b.latency_us >= a.latency_us * 20,
            "slow {} vs healthy {}",
            b.latency_us,
            a.latency_us
        );
        assert_eq!(sick.fault_stats().slowed, 1);
        // After the window: healthy again (channels cleared by then).
        let t = b.finish_us + 10_000;
        let a = healthy.submit(&read(2, t, PAGE_SIZE), t);
        let b = sick.submit(&read(2, t, PAGE_SIZE), t);
        assert_eq!(a, b);
    }

    #[test]
    fn firmware_stall_defers_service_to_window_end() {
        let mut dev =
            SsdDevice::new(quiet_config(), 22).with_fault_plan(FaultPlan::firmware_stall(0, 5_000));
        let c = dev.submit(&read(0, 100, PAGE_SIZE), 100);
        assert_eq!(c.start_us, 5_000);
        assert!(c.latency_us >= 4_900);
        assert_eq!(dev.fault_stats().stalled, 1);
        assert!(dev.is_available(100), "stall accepts I/O");
    }

    #[test]
    fn fail_stop_rejects_submissions_for_the_window() {
        let mut dev =
            SsdDevice::new(quiet_config(), 23).with_fault_plan(FaultPlan::fail_stop(1_000, 2_000));
        assert!(dev.is_available(999));
        assert!(!dev.is_available(1_000));
        assert_eq!(dev.next_available_at(1_500), 2_000);
        dev.try_submit(&read(0, 500, PAGE_SIZE), 500).unwrap();
        let err = dev
            .try_submit(&read(1, 1_500, PAGE_SIZE), 1_500)
            .unwrap_err();
        assert_eq!(err.until_us, 2_000);
        assert_eq!(dev.fault_stats().rejected, 1);
        dev.try_submit(&read(2, 2_000, PAGE_SIZE), 2_000).unwrap();
        assert_eq!(dev.stats().reads, 2, "rejected read served nothing");
    }

    #[test]
    #[should_panic(expected = "fail-stop outage window")]
    fn submit_panics_during_outage() {
        let mut dev =
            SsdDevice::new(quiet_config(), 24).with_fault_plan(FaultPlan::fail_stop(0, 100));
        dev.submit(&read(0, 50, PAGE_SIZE), 50);
    }

    #[test]
    fn inactive_fault_plan_is_bit_identical_to_no_plan() {
        // Stochastic config: any extra rng draw on the fault path would
        // diverge the streams.
        let run = |plan: FaultPlan| {
            let mut dev = SsdDevice::new(DeviceConfig::consumer_nvme(), 25).with_fault_plan(plan);
            let mut rng = Rng64::new(0xfa);
            let mut t = 0;
            (0..2_000u64)
                .map(|i| {
                    t += rng.below(150);
                    let req = if rng.chance(0.25) {
                        write(i, t, 256 * 1024)
                    } else {
                        read(i, t, PAGE_SIZE)
                    };
                    dev.submit(&req, t).latency_us
                })
                .collect::<Vec<_>>()
        };
        let far_future = FaultPlan::fail_slow(u64::MAX - 1, u64::MAX, 100.0);
        assert_eq!(run(FaultPlan::none()), run(far_future));
    }
}
