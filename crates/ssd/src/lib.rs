//! Discrete-event model of a black-box flash device.
//!
//! The Heimdall paper evaluates on ten physical SSD models plus FEMU-emulated
//! devices. This crate substitutes a behavioural simulator that reproduces
//! the phenomena the admission problem is built on (§2, §3.2):
//!
//! - microsecond base read latency with size-proportional transfer time,
//! - *slow periods*: garbage collection, urgent write-buffer flushes, and
//!   wear leveling amplify read latency by large per-event factors while
//!   simultaneously dropping throughput,
//! - *fast outliers in slow periods*: device-DRAM cache hits,
//! - *slow outliers in fast periods*: transient read-retry/ECC events,
//! - FCFS queueing over a configurable number of internal channels, which
//!   makes the observable queue length an informative feature.
//!
//! Ground-truth busy intervals are recorded for evaluation (labeling
//! accuracy, Fig 5a) but are **never** visible to admission policies.
//!
//! # Examples
//!
//! ```
//! use heimdall_ssd::{DeviceConfig, SsdDevice};
//! use heimdall_trace::{IoOp, IoRequest, PAGE_SIZE};
//!
//! let mut dev = SsdDevice::new(DeviceConfig::datacenter_nvme(), 7);
//! let req = IoRequest { id: 0, arrival_us: 0, offset: 0, size: PAGE_SIZE, op: IoOp::Read };
//! let done = dev.submit(&req, 0);
//! assert!(done.latency_us > 0);
//! ```

pub mod config;
pub mod device;
pub mod fault;

pub use config::DeviceConfig;
pub use device::{BusyInterval, BusyKind, Completion, DeviceError, DeviceStats, SsdDevice};
pub use fault::{DeviceUnavailable, FaultKind, FaultPlan, FaultPlanError, FaultStats, FaultWindow};
