//! Synthetic production-like trace generators.
//!
//! The generators model three aspects of the production traces the paper
//! evaluates on (§6.1): the arrival process, the request-size mixture, and
//! offset locality. Arrivals use a two-state on/off modulated Poisson process
//! (normal rate vs burst rate) so heavy traces exhibit the bursts that drive
//! SSDs into garbage collection; sizes come from a discrete page mixture from
//! 4 KB to 2 MB; offsets mix zipfian hot-spot reuse with sequential runs.

use crate::rng::Rng64;
use crate::{IoOp, IoRequest, Trace, WorkloadProfile, MAX_IO_SIZE, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// A discrete request-size mixture: `(size_bytes, weight)` pairs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SizeMix {
    entries: Vec<(u32, f64)>,
}

impl SizeMix {
    /// Builds a mixture from `(size, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if empty, if any weight is negative, if any size is zero or not
    /// page-aligned, or if a size exceeds [`MAX_IO_SIZE`].
    pub fn new(entries: Vec<(u32, f64)>) -> Self {
        assert!(!entries.is_empty(), "size mix must not be empty");
        for &(s, w) in &entries {
            assert!(
                s > 0 && s.is_multiple_of(PAGE_SIZE),
                "size {s} must be a positive page multiple"
            );
            assert!(s <= MAX_IO_SIZE, "size {s} exceeds MAX_IO_SIZE");
            assert!(w >= 0.0, "weights must be non-negative");
        }
        Self { entries }
    }

    /// Small-I/O-dominated mixture (MSR-like).
    pub fn small_dominated() -> Self {
        SizeMix::new(vec![
            (4 * 1024, 0.45),
            (8 * 1024, 0.25),
            (16 * 1024, 0.15),
            (64 * 1024, 0.10),
            (128 * 1024, 0.05),
        ])
    }

    /// Wide mixture including big 1-2 MB requests (Alibaba-like).
    pub fn wide() -> Self {
        SizeMix::new(vec![
            (4 * 1024, 0.30),
            (16 * 1024, 0.20),
            (64 * 1024, 0.18),
            (128 * 1024, 0.14),
            (256 * 1024, 0.10),
            (1024 * 1024, 0.05),
            (2048 * 1024, 0.03),
        ])
    }

    /// Mid-size mixture (Tencent-like block storage).
    pub fn mid() -> Self {
        SizeMix::new(vec![
            (4 * 1024, 0.25),
            (16 * 1024, 0.30),
            (64 * 1024, 0.25),
            (128 * 1024, 0.15),
            (256 * 1024, 0.05),
        ])
    }

    /// Draws one size.
    pub fn sample(&self, rng: &mut Rng64) -> u32 {
        let weights: Vec<f64> = self.entries.iter().map(|e| e.1).collect();
        self.entries[rng.weighted_index(&weights)].0
    }

    /// Multiplies every size by `factor`, clamping to `[PAGE_SIZE, MAX_IO_SIZE]`
    /// and re-aligning to pages. Used by the resize augmentation.
    pub fn scaled(&self, factor: f64) -> Self {
        let entries = self
            .entries
            .iter()
            .map(|&(s, w)| {
                let scaled = ((s as f64 * factor) as u32).clamp(PAGE_SIZE, MAX_IO_SIZE);
                (scaled / PAGE_SIZE * PAGE_SIZE, w)
            })
            .collect();
        SizeMix::new(entries)
    }
}

/// Full parametric description of a synthetic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Trace length in microseconds.
    pub duration_us: u64,
    /// Mean request rate during normal (non-burst) operation, in IOPS.
    pub base_iops: f64,
    /// Burst-state rate multiplier (`1.0` disables bursts).
    pub burst_multiplier: f64,
    /// Mean time spent in the normal state before a burst, microseconds.
    pub mean_normal_us: f64,
    /// Mean burst duration, microseconds.
    pub mean_burst_us: f64,
    /// Fraction of requests that are reads, in `[0, 1]`.
    pub read_ratio: f64,
    /// Request-size mixture.
    pub size_mix: SizeMix,
    /// Addressable bytes on the device.
    pub address_space: u64,
    /// Zipf skew for hot-spot locality, in `(0, 1)`.
    pub locality_theta: f64,
    /// Probability the next request continues sequentially after the
    /// previous one.
    pub sequential_prob: f64,
    /// Jitter applied to interarrival times (`0` = deterministic spacing,
    /// `1` = fully exponential). Tencent-like traces use low jitter to model
    /// the near-constant interarrival the paper observes (§7).
    pub arrival_jitter: f64,
}

impl WorkloadSpec {
    /// Spec for one of the named profiles.
    pub fn from_profile(profile: WorkloadProfile) -> Self {
        match profile {
            WorkloadProfile::MsrLike => WorkloadSpec {
                duration_us: 60_000_000,
                base_iops: 8_000.0,
                burst_multiplier: 6.0,
                mean_normal_us: 2_000_000.0,
                mean_burst_us: 150_000.0,
                read_ratio: 0.70,
                size_mix: SizeMix::small_dominated(),
                address_space: 256 << 30,
                locality_theta: 0.8,
                sequential_prob: 0.45,
                arrival_jitter: 1.0,
            },
            WorkloadProfile::AlibabaLike => WorkloadSpec {
                duration_us: 60_000_000,
                base_iops: 3_500.0,
                burst_multiplier: 5.0,
                mean_normal_us: 1_000_000.0,
                mean_burst_us: 120_000.0,
                read_ratio: 0.60,
                size_mix: SizeMix::wide(),
                address_space: 512 << 30,
                locality_theta: 0.9,
                sequential_prob: 0.25,
                arrival_jitter: 1.0,
            },
            WorkloadProfile::TencentLike => WorkloadSpec {
                duration_us: 60_000_000,
                base_iops: 9_000.0,
                burst_multiplier: 2.5,
                mean_normal_us: 3_000_000.0,
                mean_burst_us: 500_000.0,
                // Write IOPS ~2x read IOPS, triggering GC activity (§7).
                read_ratio: 0.33,
                size_mix: SizeMix::mid(),
                address_space: 512 << 30,
                locality_theta: 0.7,
                sequential_prob: 0.35,
                arrival_jitter: 0.15,
            },
        }
    }
}

/// Builder API over [`WorkloadSpec`] plus a seed.
///
/// # Examples
///
/// ```
/// use heimdall_trace::gen::TraceBuilder;
/// use heimdall_trace::WorkloadProfile;
///
/// let t = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
///     .duration_secs(5)
///     .iops(2_000.0)
///     .seed(1)
///     .build();
/// assert!(t.duration_us() <= 5_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuilder {
    spec: WorkloadSpec,
    seed: u64,
    name: String,
}

impl TraceBuilder {
    /// Starts from a named profile's spec.
    pub fn from_profile(profile: WorkloadProfile) -> Self {
        Self {
            spec: WorkloadSpec::from_profile(profile),
            seed: 0,
            name: profile.name().to_string(),
        }
    }

    /// Starts from an explicit spec.
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        Self {
            spec,
            seed: 0,
            name: "custom".to_string(),
        }
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the trace duration in seconds.
    pub fn duration_secs(mut self, secs: u64) -> Self {
        self.spec.duration_us = secs * 1_000_000;
        self
    }

    /// Overrides the normal-state request rate.
    pub fn iops(mut self, iops: f64) -> Self {
        self.spec.base_iops = iops;
        self
    }

    /// Overrides the read ratio.
    pub fn read_ratio(mut self, ratio: f64) -> Self {
        self.spec.read_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Overrides the trace name tag.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Accesses the underlying spec for fine-grained tweaks.
    pub fn spec_mut(&mut self) -> &mut WorkloadSpec {
        &mut self.spec
    }

    /// Generates the trace.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate (zero IOPS or zero duration).
    pub fn build(self) -> Trace {
        let spec = &self.spec;
        assert!(spec.base_iops > 0.0, "base_iops must be positive");
        assert!(spec.duration_us > 0, "duration must be positive");
        let mut rng = Rng64::new(self.seed ^ 0x4865_696d_6461_6c6c); // "Heimdall"

        let mut requests = Vec::new();
        let mut now = 0u64;
        let mut in_burst = false;
        let mut state_ends = rng.exponential(spec.mean_normal_us) as u64;
        let mut last_end_offset: u64 = 0;
        let pages_total = (spec.address_space / PAGE_SIZE as u64).max(1);

        while now < spec.duration_us {
            // Advance the on/off modulating chain.
            while now >= state_ends {
                in_burst = !in_burst;
                let mean = if in_burst {
                    spec.mean_burst_us
                } else {
                    spec.mean_normal_us
                };
                state_ends += rng.exponential(mean.max(1.0)) as u64;
            }
            let rate = if in_burst {
                spec.base_iops * spec.burst_multiplier
            } else {
                spec.base_iops
            };
            let mean_gap_us = 1_000_000.0 / rate;
            // Blend deterministic spacing with exponential jitter.
            let gap = (1.0 - spec.arrival_jitter) * mean_gap_us
                + spec.arrival_jitter * rng.exponential(mean_gap_us);
            now += (gap.max(1.0)) as u64;
            if now >= spec.duration_us {
                break;
            }

            let op = if rng.chance(spec.read_ratio) {
                IoOp::Read
            } else {
                IoOp::Write
            };
            let size = spec.size_mix.sample(&mut rng);
            let offset = if rng.chance(spec.sequential_prob) && last_end_offset > 0 {
                last_end_offset % spec.address_space
            } else {
                let page = rng.zipf(pages_total, spec.locality_theta);
                page * PAGE_SIZE as u64
            };
            let offset = offset.min(spec.address_space.saturating_sub(size as u64));
            last_end_offset = offset + size as u64;

            requests.push(IoRequest {
                id: requests.len() as u64,
                arrival_us: now,
                offset,
                size,
                op,
            });
        }
        Trace::new(self.name, requests)
    }
}

/// Convenience: builds one capped, seeded trace per the paper's 3-minute
/// experiment methodology (§6.1).
pub fn experiment_trace(profile: WorkloadProfile, seed: u64, secs: u64) -> Trace {
    TraceBuilder::from_profile(profile)
        .seed(seed)
        .duration_secs(secs)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    #[test]
    fn builder_is_deterministic() {
        let a = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(9)
            .duration_secs(2)
            .build();
        let b = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(9)
            .duration_secs(2)
            .build();
        assert_eq!(a.requests, b.requests);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(1)
            .duration_secs(2)
            .build();
        let b = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(2)
            .duration_secs(2)
            .build();
        assert_ne!(a.requests, b.requests);
    }

    #[test]
    fn arrivals_sorted_and_within_duration() {
        let t = TraceBuilder::from_profile(WorkloadProfile::AlibabaLike)
            .seed(3)
            .duration_secs(3)
            .build();
        assert!(t
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
        assert!(t.requests.last().unwrap().arrival_us < 3_000_000);
    }

    #[test]
    fn read_ratio_tracks_spec() {
        for profile in WorkloadProfile::ALL {
            let t = TraceBuilder::from_profile(profile)
                .seed(4)
                .duration_secs(5)
                .build();
            let stats = TraceStats::compute(&t);
            let want = WorkloadSpec::from_profile(profile).read_ratio;
            assert!(
                (stats.read_ratio - want).abs() < 0.05,
                "{}: got {} want {}",
                profile.name(),
                stats.read_ratio,
                want
            );
        }
    }

    #[test]
    fn sizes_are_page_aligned_and_bounded() {
        let t = TraceBuilder::from_profile(WorkloadProfile::AlibabaLike)
            .seed(5)
            .duration_secs(2)
            .build();
        for r in &t.requests {
            assert_eq!(r.size % PAGE_SIZE, 0);
            assert!(r.size <= MAX_IO_SIZE);
        }
    }

    #[test]
    fn tencent_profile_is_write_heavy() {
        let t = TraceBuilder::from_profile(WorkloadProfile::TencentLike)
            .seed(6)
            .duration_secs(5)
            .build();
        let stats = TraceStats::compute(&t);
        assert!(stats.read_ratio < 0.45, "read ratio {}", stats.read_ratio);
    }

    #[test]
    fn iops_roughly_matches_base_rate() {
        let t = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(7)
            .duration_secs(10)
            .iops(1_000.0)
            .build();
        let got = t.len() as f64 / 10.0;
        // Bursts push the average above base; allow a broad band.
        assert!(got > 700.0 && got < 3_000.0, "iops {got}");
    }

    #[test]
    fn size_mix_scaling_clamps() {
        let m = SizeMix::wide().scaled(4.0);
        let mut rng = Rng64::new(8);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s <= MAX_IO_SIZE && s.is_multiple_of(PAGE_SIZE));
        }
    }

    #[test]
    #[should_panic(expected = "size mix must not be empty")]
    fn empty_size_mix_panics() {
        SizeMix::new(vec![]);
    }

    #[test]
    fn offsets_within_address_space() {
        let t = TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(10)
            .duration_secs(2)
            .build();
        let space = WorkloadSpec::from_profile(WorkloadProfile::MsrLike).address_space;
        for r in &t.requests {
            assert!(r.offset + r.size as u64 <= space);
        }
    }
}
