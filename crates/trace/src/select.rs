//! Percentile-criteria trace-window selection (§6.1).
//!
//! The paper slices long, multi-day traces into windows and, for each of
//! five criteria (read/write ratio, size, IOPS, randomness, overall rank),
//! picks the windows at the p10/p25/p50/p75/p90/p100 values of that
//! criterion. The resulting pool — after augmentation — is what the 500
//! random experiments draw from.

use crate::stats::TraceStats;
use crate::Trace;
use serde::{Deserialize, Serialize};

/// A window of a longer trace plus its statistics.
#[derive(Debug, Clone)]
pub struct TraceWindow {
    /// Window start (microseconds into the parent trace).
    pub start_us: u64,
    /// Window end (exclusive).
    pub end_us: u64,
    /// Statistics of the requests inside the window.
    pub stats: TraceStats,
}

/// The paper's five selection criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Criterion {
    /// Fraction of reads.
    ReadWriteRatio,
    /// Mean request size.
    Size,
    /// Requests per second.
    Iops,
    /// Non-sequentiality fraction.
    Randomness,
    /// Combined normalized rank over the other four.
    Overall,
}

impl Criterion {
    /// All five criteria.
    pub const ALL: [Criterion; 5] = [
        Criterion::ReadWriteRatio,
        Criterion::Size,
        Criterion::Iops,
        Criterion::Randomness,
        Criterion::Overall,
    ];
}

/// Percentile targets used for window picking (§6.1).
pub const PICK_PERCENTILES: [f64; 6] = [0.10, 0.25, 0.50, 0.75, 0.90, 1.00];

/// Splits a trace into fixed-duration windows and computes their statistics.
///
/// Windows with no requests are skipped.
///
/// # Panics
///
/// Panics if `window_us` is zero.
pub fn windows(trace: &Trace, window_us: u64) -> Vec<TraceWindow> {
    assert!(window_us > 0, "window duration must be positive");
    let Some(first) = trace.requests.first() else {
        return Vec::new();
    };
    let start = first.arrival_us;
    let end = trace.requests.last().unwrap().arrival_us;
    let mut out = Vec::new();
    let mut lo = start;
    let mut idx = 0usize;
    while lo <= end {
        let hi = lo + window_us;
        let begin_idx = idx;
        while idx < trace.requests.len() && trace.requests[idx].arrival_us < hi {
            idx += 1;
        }
        if idx > begin_idx {
            out.push(TraceWindow {
                start_us: lo,
                end_us: hi,
                stats: TraceStats::compute_slice(&trace.requests[begin_idx..idx]),
            });
        }
        lo = hi;
    }
    out
}

fn criterion_value(c: Criterion, w: &TraceWindow, all: &[TraceWindow]) -> f64 {
    match c {
        Criterion::ReadWriteRatio => w.stats.read_ratio,
        Criterion::Size => w.stats.avg_size,
        Criterion::Iops => w.stats.iops,
        Criterion::Randomness => w.stats.randomness,
        Criterion::Overall => {
            // Mean of the four normalized criteria ranks.
            let mut sum = 0.0;
            for c in [
                Criterion::ReadWriteRatio,
                Criterion::Size,
                Criterion::Iops,
                Criterion::Randomness,
            ] {
                let v = criterion_value(c, w, all);
                let (min, max) = all.iter().fold((f64::MAX, f64::MIN), |(lo, hi), x| {
                    let xv = criterion_value(c, x, all);
                    (lo.min(xv), hi.max(xv))
                });
                sum += if max > min {
                    (v - min) / (max - min)
                } else {
                    0.5
                };
            }
            sum / 4.0
        }
    }
}

/// Picks, for each criterion, the windows at the [`PICK_PERCENTILES`] of that
/// criterion's distribution. Returns deduplicated indices into `windows`.
pub fn pick_representative(windows: &[TraceWindow]) -> Vec<usize> {
    if windows.is_empty() {
        return Vec::new();
    }
    let mut chosen = Vec::new();
    for c in Criterion::ALL {
        let mut order: Vec<usize> = (0..windows.len()).collect();
        order.sort_by(|&a, &b| {
            criterion_value(c, &windows[a], windows)
                .partial_cmp(&criterion_value(c, &windows[b], windows))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        for p in PICK_PERCENTILES {
            let pos = ((order.len() - 1) as f64 * p).round() as usize;
            chosen.push(order[pos]);
        }
    }
    chosen.sort_unstable();
    chosen.dedup();
    chosen
}

/// Slices out the picked windows as independent re-based traces.
pub fn extract(trace: &Trace, windows: &[TraceWindow], picks: &[usize]) -> Vec<Trace> {
    picks
        .iter()
        .map(|&i| trace.slice(windows[i].start_us, windows[i].end_us))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceBuilder;
    use crate::WorkloadProfile;

    fn long_trace() -> Trace {
        TraceBuilder::from_profile(WorkloadProfile::AlibabaLike)
            .seed(21)
            .duration_secs(30)
            .build()
    }

    #[test]
    fn windows_cover_all_requests() {
        let t = long_trace();
        let ws = windows(&t, 1_000_000);
        let total: usize = ws.iter().map(|w| w.stats.count).sum();
        assert_eq!(total, t.len());
    }

    #[test]
    fn windows_are_disjoint_in_time() {
        let t = long_trace();
        let ws = windows(&t, 2_000_000);
        for pair in ws.windows(2) {
            assert!(pair[0].end_us <= pair[1].start_us);
        }
    }

    #[test]
    fn pick_returns_windows_for_every_criterion() {
        let t = long_trace();
        let ws = windows(&t, 1_000_000);
        let picks = pick_representative(&ws);
        assert!(!picks.is_empty());
        assert!(picks.len() <= Criterion::ALL.len() * PICK_PERCENTILES.len());
        assert!(picks.iter().all(|&i| i < ws.len()));
    }

    #[test]
    fn pick_indices_unique_and_sorted() {
        let t = long_trace();
        let ws = windows(&t, 1_000_000);
        let picks = pick_representative(&ws);
        assert!(picks.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn extract_rebases_each_window() {
        let t = long_trace();
        let ws = windows(&t, 5_000_000);
        let picks = pick_representative(&ws);
        let slices = extract(&t, &ws, &picks);
        assert_eq!(slices.len(), picks.len());
        for s in &slices {
            assert!(!s.is_empty());
            assert!(s.requests[0].arrival_us < 5_000_000);
        }
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let ws = windows(&Trace::default(), 1000);
        assert!(ws.is_empty());
        assert!(pick_representative(&ws).is_empty());
    }

    #[test]
    #[should_panic(expected = "window duration must be positive")]
    fn zero_window_panics() {
        windows(&Trace::default(), 0);
    }
}
