//! Small, deterministic pseudo-random toolkit used across the workspace.
//!
//! Every stochastic component in the reproduction (trace generators, the SSD
//! model's internal events, dataset shuffles, weight init) takes an explicit
//! `u64` seed and draws from this generator, so every experiment is exactly
//! reproducible. The core is xoshiro256** seeded through SplitMix64 — the
//! standard, well-tested construction — implemented in ~60 lines so the hot
//! simulation loops carry no external dependency.

/// Deterministic xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Creates a generator from a seed via SplitMix64 state expansion.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; used to give each simulated
    /// component its own stream without cross-talk.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn f32(&mut self) -> f32 {
        self.f64() as f32
    }

    /// Uniform integer in `[0, bound)` using Lemire rejection.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's nearly-divisionless method.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box-Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1 = self.f64().max(f64::MIN_POSITIVE);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential with the given mean (`mean = 1/rate`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        -mean * (1.0 - self.f64()).ln()
    }

    /// Log-normal with the given parameters of the underlying normal.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Pareto (heavy-tailed) draw with scale `xm > 0` and shape `alpha > 0`.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        xm / (1.0 - self.f64()).powf(1.0 / alpha)
    }

    /// Zipf-like rank draw over `[0, n)` with skew `theta in (0, 1)`
    /// using the classic YCSB-style approximation (cheap, adequate for
    /// workload locality). Higher `theta` means more skew.
    pub fn zipf(&mut self, n: u64, theta: f64) -> u64 {
        debug_assert!(n > 0);
        let u = self.f64();
        // Map a uniform draw through a power law; exact Zipf is unnecessary
        // for generating hot/cold offset locality.
        let r = (u.powf(1.0 / (1.0 - theta)) * n as f64) as u64;
        r.min(n - 1)
    }

    /// Fisher-Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Uniformly chooses one element, or `None` if the slice is empty.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[self.below(xs.len() as u64) as usize])
        }
    }

    /// Samples an index from unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must have positive sum");
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng64::new(4);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_bound_one_is_zero() {
        let mut r = Rng64::new(5);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        Rng64::new(0).below(0);
    }

    #[test]
    fn normal_mean_approx() {
        let mut r = Rng64::new(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.normal(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn exponential_mean_approx() {
        let mut r = Rng64::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn zipf_skews_low_ranks() {
        let mut r = Rng64::new(8);
        let n = 50_000;
        let low = (0..n).filter(|_| r.zipf(1000, 0.9) < 100).count();
        // With theta=0.9, far more than 10% of draws land in the first 10%.
        assert!(
            low as f64 / n as f64 > 0.5,
            "low fraction {}",
            low as f64 / n as f64
        );
    }

    #[test]
    fn zipf_within_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..10_000 {
            assert!(r.zipf(17, 0.5) < 17);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(10);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_index_prefers_heavy() {
        let mut r = Rng64::new(11);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5);
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = Rng64::new(12);
        assert!(r.choose::<u8>(&[]).is_none());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng64::new(13);
        let mut a = parent.fork();
        let mut b = parent.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
