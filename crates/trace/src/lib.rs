//! Block I/O trace model and synthetic production-like trace generators.
//!
//! This crate is the workload substrate of the Heimdall reproduction. The
//! original paper evaluates on 2 TB of production block traces from MSR
//! Cambridge, Alibaba, and Tencent; those traces are not redistributable at
//! that scale, so this crate provides *parametric generators* that reproduce
//! the statistical properties the Heimdall pipeline depends on:
//!
//! - variable request sizes from one page (4 KB) up to big requests (2 MB),
//! - bursty arrival processes (on/off modulated Poisson),
//! - skewed (zipfian) offset locality with sequential runs,
//! - configurable read/write mixes, including the write-heavy Tencent-like
//!   profile used by the paper's long-term retraining study (§7).
//!
//! It also implements the paper's trace tooling (§6.1): slicing long traces
//! into windows, ranking windows by five criteria (read/write ratio, size,
//! IOPS, randomness, overall), percentile-based window selection, the five
//! data-augmentation functions (0.1×/0.5×/2× rerate, 2×/4× resize), and the
//! light/heavy workload classification.
//!
//! # Examples
//!
//! ```
//! use heimdall_trace::{gen::TraceBuilder, WorkloadProfile};
//!
//! let trace = TraceBuilder::from_profile(WorkloadProfile::AlibabaLike)
//!     .duration_secs(10)
//!     .seed(42)
//!     .build();
//! assert!(!trace.requests.is_empty());
//! ```

pub mod augment;
pub mod gen;
pub mod io;
pub mod rng;
pub mod select;
pub mod stats;

use serde::{Deserialize, Serialize};

/// Size of one flash page in bytes; the minimum I/O granularity.
pub const PAGE_SIZE: u32 = 4096;

/// Largest request the generators will produce (2 MiB, matching the paper's
/// "one-page (4KB) to big request (2MB)" range in §3.1).
pub const MAX_IO_SIZE: u32 = 2 * 1024 * 1024;

/// Direction of a block request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IoOp {
    /// A read request. Heimdall optimizes read latency (§2).
    Read,
    /// A write request. Writes are absorbed by device buffers but trigger
    /// background activity (GC, flushes) that slows later reads.
    Write,
}

impl IoOp {
    /// Returns `true` for [`IoOp::Read`].
    #[inline]
    pub fn is_read(self) -> bool {
        matches!(self, IoOp::Read)
    }
}

/// One block I/O request, the unit every other crate operates on.
///
/// Times are in microseconds since the start of the trace; offsets and sizes
/// are in bytes. This mirrors the `(timestamp, offset, size, type)` tuples of
/// the MSR/Alibaba/Tencent trace formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Trace-unique request id (position in the trace).
    pub id: u64,
    /// Arrival time in microseconds from trace start.
    pub arrival_us: u64,
    /// Starting byte offset on the device.
    pub offset: u64,
    /// Request length in bytes (multiple of [`PAGE_SIZE`]).
    pub size: u32,
    /// Read or write.
    pub op: IoOp,
}

impl IoRequest {
    /// Number of 4 KB pages this request spans (rounded up).
    ///
    /// LinnOS-style per-page policies run one inference per page (§3.5a).
    #[inline]
    pub fn pages(&self) -> u32 {
        self.size.div_ceil(PAGE_SIZE)
    }
}

/// An ordered sequence of I/O requests plus bookkeeping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Requests sorted by arrival time.
    pub requests: Vec<IoRequest>,
    /// Human-readable origin tag, e.g. `"alibaba-like"`.
    pub name: String,
}

impl Trace {
    /// Creates a trace from a pre-sorted request vector.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `requests` is not sorted by arrival time.
    pub fn new(name: impl Into<String>, requests: Vec<IoRequest>) -> Self {
        debug_assert!(
            requests
                .windows(2)
                .all(|w| w[0].arrival_us <= w[1].arrival_us),
            "trace requests must be sorted by arrival time"
        );
        Self {
            requests,
            name: name.into(),
        }
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Trace duration in microseconds (last arrival minus first).
    pub fn duration_us(&self) -> u64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(f), Some(l)) => l.arrival_us - f.arrival_us,
            _ => 0,
        }
    }

    /// Returns the sub-trace with arrivals in `[start_us, end_us)`,
    /// re-based so the first request arrives at time zero.
    pub fn slice(&self, start_us: u64, end_us: u64) -> Trace {
        let mut out = Vec::new();
        for r in &self.requests {
            if r.arrival_us >= start_us && r.arrival_us < end_us {
                let mut c = *r;
                c.arrival_us -= start_us;
                c.id = out.len() as u64;
                out.push(c);
            }
        }
        Trace::new(format!("{}[{start_us}..{end_us})", self.name), out)
    }

    /// Caps the trace at `cap_us` microseconds, as the paper caps each
    /// experiment trace at 3 minutes (§6.1).
    pub fn capped(&self, cap_us: u64) -> Trace {
        self.slice(
            self.requests.first().map_or(0, |r| r.arrival_us),
            self.requests.first().map_or(0, |r| r.arrival_us) + cap_us,
        )
    }

    /// The paper classifies a trace as *light* when it has fewer than 300k
    /// I/Os (§6.1); heavier traces are candidates to shed load from.
    pub fn is_light(&self) -> bool {
        self.requests.len() < 300_000
    }
}

/// Named workload families approximating the paper's trace sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadProfile {
    /// MSR-Cambridge-like: moderate IOPS, read-leaning, strong sequential
    /// runs, small-to-medium sizes.
    MsrLike,
    /// Alibaba-block-like: high IOPS, bursty, wide size mix up to 2 MB.
    AlibabaLike,
    /// Tencent-block-like: write-heavy (≈2× more write IOPS than read, §7),
    /// near-constant interarrival, keeps devices uniformly busy.
    TencentLike,
}

impl WorkloadProfile {
    /// All profiles, handy for sweeps.
    pub const ALL: [WorkloadProfile; 3] = [
        WorkloadProfile::MsrLike,
        WorkloadProfile::AlibabaLike,
        WorkloadProfile::TencentLike,
    ];

    /// Stable lowercase name (used in experiment output).
    pub fn name(self) -> &'static str {
        match self {
            WorkloadProfile::MsrLike => "msr-like",
            WorkloadProfile::AlibabaLike => "alibaba-like",
            WorkloadProfile::TencentLike => "tencent-like",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, t: u64) -> IoRequest {
        IoRequest {
            id,
            arrival_us: t,
            offset: 0,
            size: PAGE_SIZE,
            op: IoOp::Read,
        }
    }

    #[test]
    fn pages_rounds_up() {
        let mut r = req(0, 0);
        r.size = PAGE_SIZE;
        assert_eq!(r.pages(), 1);
        r.size = PAGE_SIZE + 1;
        assert_eq!(r.pages(), 2);
        r.size = MAX_IO_SIZE;
        assert_eq!(r.pages(), 512);
    }

    #[test]
    fn slice_rebases_time_and_ids() {
        let t = Trace::new("t", vec![req(0, 100), req(1, 200), req(2, 300)]);
        let s = t.slice(150, 301);
        assert_eq!(s.len(), 2);
        assert_eq!(s.requests[0].arrival_us, 50);
        assert_eq!(s.requests[0].id, 0);
        assert_eq!(s.requests[1].arrival_us, 150);
    }

    #[test]
    fn capped_limits_duration() {
        let t = Trace::new("t", vec![req(0, 0), req(1, 10), req(2, 1_000_000)]);
        let c = t.capped(100);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn light_threshold_matches_paper() {
        let t = Trace::new("t", vec![req(0, 0)]);
        assert!(t.is_light());
    }

    #[test]
    fn duration_empty_is_zero() {
        assert_eq!(Trace::default().duration_us(), 0);
    }
}
