//! The paper's five data-augmentation functions (§6.1).
//!
//! To increase dataset variability, Heimdall augments each selected trace
//! window with 0.1× rerate, 0.5× rerate, 2× rerate, 2× resize, and 4× resize.
//! Rerating by factor `f` multiplies the request *rate* by `f` (interarrival
//! gaps scale by `1/f`); resizing multiplies request sizes, clamped to the
//! valid page-aligned range.

use crate::{Trace, MAX_IO_SIZE, PAGE_SIZE};
use serde::{Deserialize, Serialize};

/// One augmentation function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Augmentation {
    /// Multiply the request rate by the factor (`> 0`).
    Rerate(f64),
    /// Multiply request sizes by the factor (`> 0`), page-aligned and
    /// clamped to `[PAGE_SIZE, MAX_IO_SIZE]`.
    Resize(f64),
}

impl Augmentation {
    /// The paper's standard augmentation set (§6.1).
    pub const PAPER_SET: [Augmentation; 5] = [
        Augmentation::Rerate(0.1),
        Augmentation::Rerate(0.5),
        Augmentation::Rerate(2.0),
        Augmentation::Resize(2.0),
        Augmentation::Resize(4.0),
    ];

    /// Short tag used in experiment output, e.g. `"rerate2x"`.
    pub fn tag(self) -> String {
        match self {
            Augmentation::Rerate(f) => format!("rerate{f}x"),
            Augmentation::Resize(f) => format!("resize{f}x"),
        }
    }

    /// Applies the augmentation, returning a new trace.
    ///
    /// # Panics
    ///
    /// Panics if the factor is not positive or not finite.
    pub fn apply(self, trace: &Trace) -> Trace {
        match self {
            Augmentation::Rerate(f) => rerate(trace, f),
            Augmentation::Resize(f) => resize(trace, f),
        }
    }
}

/// Multiplies the request rate by `factor` by scaling interarrival gaps.
///
/// # Panics
///
/// Panics if `factor` is not a positive finite number.
pub fn rerate(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor > 0.0,
        "rerate factor must be positive"
    );
    let mut out = Vec::with_capacity(trace.len());
    let base = trace.requests.first().map_or(0, |r| r.arrival_us);
    for r in &trace.requests {
        let mut c = *r;
        c.arrival_us = base + (((r.arrival_us - base) as f64) / factor).round() as u64;
        out.push(c);
    }
    Trace::new(format!("{}+rerate{factor}x", trace.name), out)
}

/// Multiplies request sizes by `factor` (page-aligned, clamped).
///
/// # Panics
///
/// Panics if `factor` is not a positive finite number.
pub fn resize(trace: &Trace, factor: f64) -> Trace {
    assert!(
        factor.is_finite() && factor > 0.0,
        "resize factor must be positive"
    );
    let mut out = Vec::with_capacity(trace.len());
    for r in &trace.requests {
        let mut c = *r;
        let scaled = (r.size as f64 * factor).round() as u64;
        let clamped = scaled.clamp(PAGE_SIZE as u64, MAX_IO_SIZE as u64) as u32;
        c.size = clamped / PAGE_SIZE * PAGE_SIZE;
        out.push(c);
    }
    Trace::new(format!("{}+resize{factor}x", trace.name), out)
}

/// Expands one trace into itself plus every augmentation in `set`.
pub fn augmented_pool(trace: &Trace, set: &[Augmentation]) -> Vec<Trace> {
    let mut pool = Vec::with_capacity(set.len() + 1);
    pool.push(trace.clone());
    pool.extend(set.iter().map(|a| a.apply(trace)));
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoOp, IoRequest};

    fn mk_trace(gap: u64, size: u32, n: u64) -> Trace {
        let reqs = (0..n)
            .map(|i| IoRequest {
                id: i,
                arrival_us: i * gap,
                offset: 0,
                size,
                op: IoOp::Read,
            })
            .collect();
        Trace::new("t", reqs)
    }

    #[test]
    fn rerate_2x_halves_gaps() {
        let t = mk_trace(1000, PAGE_SIZE, 5);
        let r = rerate(&t, 2.0);
        assert_eq!(r.requests[1].arrival_us, 500);
        assert_eq!(r.requests[4].arrival_us, 2000);
    }

    #[test]
    fn rerate_tenth_stretches_gaps() {
        let t = mk_trace(100, PAGE_SIZE, 3);
        let r = rerate(&t, 0.1);
        assert_eq!(r.requests[2].arrival_us, 2000);
    }

    #[test]
    fn rerate_preserves_count_and_sizes() {
        let t = mk_trace(10, 8192, 100);
        let r = rerate(&t, 0.5);
        assert_eq!(r.len(), 100);
        assert!(r.requests.iter().all(|q| q.size == 8192));
    }

    #[test]
    fn resize_scales_and_aligns() {
        let t = mk_trace(10, 4096, 3);
        let r = resize(&t, 2.0);
        assert!(r.requests.iter().all(|q| q.size == 8192));
    }

    #[test]
    fn resize_clamps_to_max() {
        let t = mk_trace(10, MAX_IO_SIZE, 3);
        let r = resize(&t, 4.0);
        assert!(r.requests.iter().all(|q| q.size == MAX_IO_SIZE));
    }

    #[test]
    fn resize_never_below_page() {
        let t = mk_trace(10, PAGE_SIZE, 3);
        let r = resize(&t, 0.1);
        assert!(r.requests.iter().all(|q| q.size == PAGE_SIZE));
    }

    #[test]
    fn paper_set_produces_six_traces() {
        let t = mk_trace(10, PAGE_SIZE, 10);
        let pool = augmented_pool(&t, &Augmentation::PAPER_SET);
        assert_eq!(pool.len(), 6);
    }

    #[test]
    #[should_panic(expected = "rerate factor must be positive")]
    fn zero_rerate_panics() {
        rerate(&mk_trace(10, PAGE_SIZE, 2), 0.0);
    }

    #[test]
    fn rerate_keeps_order() {
        let t = mk_trace(7, PAGE_SIZE, 50);
        let r = rerate(&t, 3.0);
        assert!(r
            .requests
            .windows(2)
            .all(|w| w[0].arrival_us <= w[1].arrival_us));
    }
}
