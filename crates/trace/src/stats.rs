//! Per-trace and per-window workload statistics.
//!
//! These are the five selection criteria the paper uses to pick
//! representative windows out of multi-day traces (§6.1): read/write ratio,
//! request size, IOPS, randomness, and an overall ranking combining them.

use crate::{IoRequest, Trace};
use serde::{Deserialize, Serialize};

/// Summary statistics of a trace or trace window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of requests.
    pub count: usize,
    /// Fraction of reads in `[0, 1]`.
    pub read_ratio: f64,
    /// Mean request size in bytes.
    pub avg_size: f64,
    /// Requests per second over the window duration.
    pub iops: f64,
    /// Fraction of requests that do *not* continue sequentially from the
    /// previous request (1.0 = fully random).
    pub randomness: f64,
    /// Window duration in microseconds.
    pub duration_us: u64,
    /// Total bytes moved.
    pub total_bytes: u64,
}

impl TraceStats {
    /// Computes statistics over a trace.
    pub fn compute(trace: &Trace) -> TraceStats {
        Self::compute_slice(&trace.requests)
    }

    /// Computes statistics over a raw request slice (must be arrival-sorted).
    pub fn compute_slice(reqs: &[IoRequest]) -> TraceStats {
        if reqs.is_empty() {
            return TraceStats {
                count: 0,
                read_ratio: 0.0,
                avg_size: 0.0,
                iops: 0.0,
                randomness: 0.0,
                duration_us: 0,
                total_bytes: 0,
            };
        }
        let count = reqs.len();
        let reads = reqs.iter().filter(|r| r.op.is_read()).count();
        let total_bytes: u64 = reqs.iter().map(|r| r.size as u64).sum();
        let duration_us = reqs.last().unwrap().arrival_us - reqs[0].arrival_us;
        let iops = if duration_us == 0 {
            count as f64
        } else {
            count as f64 / (duration_us as f64 / 1e6)
        };
        let mut nonseq = 0usize;
        for w in reqs.windows(2) {
            if w[1].offset != w[0].offset + w[0].size as u64 {
                nonseq += 1;
            }
        }
        let randomness = if count > 1 {
            nonseq as f64 / (count - 1) as f64
        } else {
            1.0
        };
        TraceStats {
            count,
            read_ratio: reads as f64 / count as f64,
            avg_size: total_bytes as f64 / count as f64,
            iops,
            randomness,
            duration_us,
            total_bytes,
        }
    }

    /// Mean throughput demanded by the trace, bytes/second.
    pub fn mean_bandwidth(&self) -> f64 {
        if self.duration_us == 0 {
            0.0
        } else {
            self.total_bytes as f64 / (self.duration_us as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IoOp, PAGE_SIZE};

    fn mk(id: u64, t: u64, off: u64, size: u32, op: IoOp) -> IoRequest {
        IoRequest {
            id,
            arrival_us: t,
            offset: off,
            size,
            op,
        }
    }

    #[test]
    fn empty_trace_stats() {
        let s = TraceStats::compute(&Trace::default());
        assert_eq!(s.count, 0);
        assert_eq!(s.iops, 0.0);
    }

    #[test]
    fn read_ratio_counts_reads() {
        let reqs = vec![
            mk(0, 0, 0, PAGE_SIZE, IoOp::Read),
            mk(1, 10, 0, PAGE_SIZE, IoOp::Write),
            mk(2, 20, 0, PAGE_SIZE, IoOp::Read),
            mk(3, 30, 0, PAGE_SIZE, IoOp::Read),
        ];
        let s = TraceStats::compute_slice(&reqs);
        assert!((s.read_ratio - 0.75).abs() < 1e-12);
    }

    #[test]
    fn iops_uses_window_duration() {
        // Four requests over 3 ms -> ~1333 IOPS.
        let reqs: Vec<_> = (0..4)
            .map(|i| mk(i, i * 1000, 0, PAGE_SIZE, IoOp::Read))
            .collect();
        let s = TraceStats::compute_slice(&reqs);
        assert!((s.iops - 4.0 / 0.003).abs() < 1.0);
    }

    #[test]
    fn randomness_detects_sequential_runs() {
        // Perfectly sequential stream.
        let reqs: Vec<_> = (0..10)
            .map(|i| mk(i, i * 10, i * PAGE_SIZE as u64, PAGE_SIZE, IoOp::Read))
            .collect();
        let s = TraceStats::compute_slice(&reqs);
        assert_eq!(s.randomness, 0.0);
    }

    #[test]
    fn randomness_detects_random_stream() {
        let reqs: Vec<_> = (0..10)
            .map(|i| {
                mk(
                    i,
                    i * 10,
                    (i * 7919) * PAGE_SIZE as u64,
                    PAGE_SIZE,
                    IoOp::Read,
                )
            })
            .collect();
        let s = TraceStats::compute_slice(&reqs);
        assert_eq!(s.randomness, 1.0);
    }

    #[test]
    fn bandwidth_matches_bytes_over_time() {
        let reqs = vec![
            mk(0, 0, 0, PAGE_SIZE, IoOp::Read),
            mk(1, 1_000_000, 0, PAGE_SIZE, IoOp::Read),
        ];
        let s = TraceStats::compute_slice(&reqs);
        assert!((s.mean_bandwidth() - 2.0 * PAGE_SIZE as f64).abs() < 1e-9);
    }
}
