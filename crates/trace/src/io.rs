//! Trace import/export.
//!
//! Two interchange formats:
//!
//! - **CSV** in the MSR-Cambridge-style column order
//!   `timestamp_us,op,offset,size` — easy to eyeball and to exchange with
//!   the published trace tooling.
//! - **HTRC**, a compact little-endian binary format (magic `HTRC`,
//!   version byte, u64 count, then 21-byte records) for large generated
//!   pools where CSV is too bulky.

use crate::{IoOp, IoRequest, Trace};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{BufRead, BufReader, Read, Write};

/// Errors raised while parsing a trace.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the input.
    Parse {
        /// 1-based line (CSV) or record index (binary).
        at: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceIoError::Parse { at, reason } => {
                write!(f, "trace parse error at record {at}: {reason}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace as CSV (`timestamp_us,op,offset,size`, header included).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> Result<(), TraceIoError> {
    writeln!(w, "timestamp_us,op,offset,size")?;
    for r in &trace.requests {
        let op = if r.op.is_read() { 'R' } else { 'W' };
        writeln!(w, "{},{},{},{}", r.arrival_us, op, r.offset, r.size)?;
    }
    Ok(())
}

/// Reads a CSV trace (header optional; `R`/`W` or `0`/`1` op column).
///
/// Requests are sorted by timestamp and re-numbered.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] with the offending line number on
/// malformed rows.
pub fn read_csv<R: Read>(name: &str, r: R) -> Result<Trace, TraceIoError> {
    let reader = BufReader::new(r);
    let mut requests = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("timestamp")) {
            continue;
        }
        let mut cols = line.split(',').map(str::trim);
        let parse = |v: Option<&str>, what: &str| -> Result<u64, TraceIoError> {
            v.and_then(|x| x.parse().ok())
                .ok_or_else(|| TraceIoError::Parse {
                    at: lineno + 1,
                    reason: format!("bad {what}"),
                })
        };
        let ts = parse(cols.next(), "timestamp")?;
        let op = match cols.next() {
            Some("R") | Some("r") | Some("0") => IoOp::Read,
            Some("W") | Some("w") | Some("1") => IoOp::Write,
            other => {
                return Err(TraceIoError::Parse {
                    at: lineno + 1,
                    reason: format!("bad op {other:?}"),
                })
            }
        };
        let offset = parse(cols.next(), "offset")?;
        let size = parse(cols.next(), "size")? as u32;
        if size == 0 {
            return Err(TraceIoError::Parse {
                at: lineno + 1,
                reason: "zero size".into(),
            });
        }
        requests.push(IoRequest {
            id: 0,
            arrival_us: ts,
            offset,
            size,
            op,
        });
    }
    requests.sort_by_key(|r| r.arrival_us);
    for (i, r) in requests.iter_mut().enumerate() {
        r.id = i as u64;
    }
    Ok(Trace::new(name, requests))
}

const MAGIC: &[u8; 4] = b"HTRC";
const VERSION: u8 = 1;

/// Serializes a trace into the compact HTRC binary format.
pub fn to_bytes(trace: &Trace) -> Bytes {
    let mut buf = BytesMut::with_capacity(13 + trace.len() * 21);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(trace.len() as u64);
    for r in &trace.requests {
        buf.put_u64_le(r.arrival_us);
        buf.put_u64_le(r.offset);
        buf.put_u32_le(r.size);
        buf.put_u8(u8::from(!r.op.is_read()));
    }
    buf.freeze()
}

/// Deserializes an HTRC buffer.
///
/// # Errors
///
/// Returns [`TraceIoError::Parse`] on bad magic, version, truncation, or
/// out-of-order timestamps.
pub fn from_bytes(name: &str, data: &[u8]) -> Result<Trace, TraceIoError> {
    let mut buf = data;
    if buf.remaining() < 13 {
        return Err(TraceIoError::Parse {
            at: 0,
            reason: "truncated header".into(),
        });
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceIoError::Parse {
            at: 0,
            reason: "bad magic".into(),
        });
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(TraceIoError::Parse {
            at: 0,
            reason: format!("unsupported version {version}"),
        });
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * 21 {
        return Err(TraceIoError::Parse {
            at: 0,
            reason: "truncated body".into(),
        });
    }
    let mut requests = Vec::with_capacity(count);
    let mut prev = 0u64;
    for i in 0..count {
        let arrival_us = buf.get_u64_le();
        let offset = buf.get_u64_le();
        let size = buf.get_u32_le();
        let op = if buf.get_u8() == 0 {
            IoOp::Read
        } else {
            IoOp::Write
        };
        if arrival_us < prev {
            return Err(TraceIoError::Parse {
                at: i + 1,
                reason: "timestamps out of order".into(),
            });
        }
        prev = arrival_us;
        requests.push(IoRequest {
            id: i as u64,
            arrival_us,
            offset,
            size,
            op,
        });
    }
    Ok(Trace::new(name, requests))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::TraceBuilder;
    use crate::WorkloadProfile;

    fn sample() -> Trace {
        TraceBuilder::from_profile(WorkloadProfile::MsrLike)
            .seed(1)
            .duration_secs(2)
            .build()
    }

    #[test]
    fn csv_roundtrip() {
        let t = sample();
        let mut out = Vec::new();
        write_csv(&t, &mut out).unwrap();
        let back = read_csv("roundtrip", &out[..]).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.requests.iter().zip(&back.requests) {
            assert_eq!(
                (a.arrival_us, a.offset, a.size, a.op),
                (b.arrival_us, b.offset, b.size, b.op)
            );
        }
    }

    #[test]
    fn csv_accepts_numeric_ops_and_no_header() {
        let data = "100,0,4096,8192\n200,1,0,4096\n";
        let t = read_csv("t", data.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.requests[0].op.is_read());
        assert!(!t.requests[1].op.is_read());
    }

    #[test]
    fn csv_sorts_unordered_rows() {
        let data = "timestamp_us,op,offset,size\n300,R,0,4096\n100,R,0,4096\n";
        let t = read_csv("t", data.as_bytes()).unwrap();
        assert_eq!(t.requests[0].arrival_us, 100);
        assert_eq!(t.requests[0].id, 0);
    }

    #[test]
    fn csv_rejects_garbage() {
        for bad in ["abc,R,0,4096", "100,X,0,4096", "100,R,0,zero", "100,R,0,0"] {
            assert!(read_csv("t", bad.as_bytes()).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn binary_roundtrip() {
        let t = sample();
        let bytes = to_bytes(&t);
        let back = from_bytes("roundtrip", &bytes).unwrap();
        assert_eq!(back.requests, {
            let mut r = t.requests.clone();
            for (i, x) in r.iter_mut().enumerate() {
                x.id = i as u64;
            }
            r
        });
    }

    #[test]
    fn binary_rejects_corruption() {
        let t = sample();
        let bytes = to_bytes(&t).to_vec();
        assert!(from_bytes("t", &bytes[..10]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes("t", &bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 9;
        assert!(from_bytes("t", &bad_version).is_err());
        let truncated = &bytes[..bytes.len() - 5];
        assert!(from_bytes("t", truncated).is_err());
    }

    #[test]
    fn binary_is_compact() {
        let t = sample();
        let bytes = to_bytes(&t);
        assert_eq!(bytes.len(), 13 + t.len() * 21);
    }
}
